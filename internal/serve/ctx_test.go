package serve

import (
	"context"
	"errors"
	"sync"
	"testing"

	"icebergcube/internal/lattice"
)

// TestQueryCtxCancelledAtEntry: a context cancelled before the call never
// reaches the cache or the aggregation kernel and is counted.
func TestQueryCtxCancelledAtEntry(t *testing.T) {
	leaf, cards := buildLeaf([]int{4, 3, 5}, 200, 1)
	s := NewServer(leaf, cards, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.QueryCtx(ctx, lattice.Mask(0b011)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	m := s.Stats()
	if m.Canceled != 1 {
		t.Fatalf("Canceled = %d, want 1", m.Canceled)
	}
	if m.Queries != 0 || m.Computes != 0 {
		t.Fatalf("cancelled query did work: %+v", m)
	}
	// The same query with a live context still answers correctly.
	cub, _, err := s.QueryCtx(context.Background(), lattice.Mask(0b011))
	if err != nil {
		t.Fatal(err)
	}
	checkCuboid(t, leaf, lattice.Mask(0b011), cub)
}

// TestQueryCtxWaiterAbandonsFlight: a coalesced waiter whose context is
// cancelled returns immediately; the flight it was waiting on completes
// and serves later queries from the cache.
func TestQueryCtxWaiterAbandonsFlight(t *testing.T) {
	leaf, cards := buildLeaf([]int{6, 5, 4}, 400, 2)
	s := NewServer(leaf, cards, 0)
	q := lattice.Mask(0b101)

	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	s.testBeforeAdmit = func() {
		once.Do(func() { close(entered) })
		<-release
	}

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := s.Query(q)
		leaderDone <- err
	}()
	<-entered // the leader is mid-computation, holding the flight open

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := s.QueryCtx(ctx, q)
		waiterDone <- err
	}()
	// Cancel the waiter while the leader is still blocked. The waiter must
	// return without waiting for the flight.
	cancel()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader err = %v", err)
	}
	s.testBeforeAdmit = nil

	// The flight completed despite the abandoned waiter: the cuboid is
	// resident now.
	_, qs, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !qs.CacheHit {
		t.Fatalf("expected cache hit after completed flight, got %+v", qs)
	}
	if got := s.Stats().Canceled; got != 1 {
		t.Fatalf("Canceled = %d, want 1", got)
	}
}

// memColdSource streams a fixed row set in small chunks and counts the
// chunks yielded, so tests can observe a scan aborting early.
type memColdSource struct {
	width   int
	keys    [][]uint32 // row-major
	meas    []float64
	chunk   int
	onChunk func(n int) // called after the nth chunk is yielded (1-based)

	mu      sync.Mutex
	yielded int
}

func (m *memColdSource) Width() int { return m.width }
func (m *memColdSource) Rows() int  { return len(m.meas) }

func (m *memColdSource) Scan(dims []int, yield func(cols [][]uint32, meas []float64) error) error {
	for lo := 0; lo < len(m.meas); lo += m.chunk {
		hi := lo + m.chunk
		if hi > len(m.meas) {
			hi = len(m.meas)
		}
		cols := make([][]uint32, len(dims))
		for i, d := range dims {
			col := make([]uint32, 0, hi-lo)
			for r := lo; r < hi; r++ {
				col = append(col, m.keys[r][d])
			}
			cols[i] = col
		}
		m.mu.Lock()
		m.yielded++
		n := m.yielded
		m.mu.Unlock()
		if m.onChunk != nil {
			m.onChunk(n)
		}
		if err := yield(cols, m.meas[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

func (m *memColdSource) chunksYielded() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.yielded
}

// TestColdQueryCtxAbortsScan: cancelling mid-scan stops the cold source
// stream well before the table end, surfaces the context error, and does
// not poison later queries.
func TestColdQueryCtxAbortsScan(t *testing.T) {
	const rows = 1000
	src := &memColdSource{width: 3, chunk: 10}
	for r := 0; r < rows; r++ {
		src.keys = append(src.keys, []uint32{uint32(r % 7), uint32(r % 5), uint32(r % 3)})
		src.meas = append(src.meas, float64(r))
	}
	s, err := NewColdServer(src, []int{7, 5, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Cancel from inside the scan after the third chunk, so the abort is
	// deterministic: chunk 4's context check must fail.
	ctx, cancel := context.WithCancel(context.Background())
	src.onChunk = func(n int) {
		if n == 3 {
			cancel()
		}
	}
	_, _, err = s.QueryCtx(ctx, lattice.Mask(0b001))
	src.onChunk = nil
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	aborted := src.chunksYielded()
	if aborted >= rows/src.chunk {
		t.Fatalf("scan ran to completion (%d chunks) despite cancellation", aborted)
	}
	if got := s.Stats().Canceled; got == 0 {
		t.Fatal("Canceled counter not incremented")
	}

	// A fresh query recovers: full scan, correct metrics.
	cub, qs, err := s.Query(lattice.Mask(0b001))
	if err != nil {
		t.Fatal(err)
	}
	if !qs.ColdScan || qs.RowsScanned != rows {
		t.Fatalf("recovery query stats %+v, want full cold scan of %d rows", qs, rows)
	}
	if cub.Rows() != 7 {
		t.Fatalf("cuboid has %d cells, want 7", cub.Rows())
	}
}
