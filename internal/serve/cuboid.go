package serve

import (
	"icebergcube/internal/agg"
	"icebergcube/internal/lattice"
	"icebergcube/internal/relation"
)

// Cuboid is one resident group-by in serving form: row-major dictionary
// codes plus one aggregate state per row, sorted in natural tuple order.
// Cuboids are immutable after construction, so readers never lock — the
// cache may drop a cuboid while a query is still aggregating from it.
type Cuboid struct {
	// Mask identifies the group-by, with bit i meaning "materialized
	// dimension i" (positions are relative to the server's leaf, not to
	// the underlying relation).
	Mask lattice.Mask
	// Width is the number of key columns, Mask.Count(). Zero for the
	// "all" cuboid, whose single row has an empty key.
	Width int
	// Keys holds Rows()×Width codes row-major, rows in ascending tuple
	// order.
	Keys []uint32
	// States holds one aggregate per row, parallel to Keys.
	States []agg.State
}

// Rows returns the cell count.
func (c *Cuboid) Rows() int {
	if c.Width == 0 {
		return len(c.States)
	}
	return len(c.Keys) / c.Width
}

// Row returns row i's key tuple (aliases the cuboid's storage).
func (c *Cuboid) Row(i int) []uint32 {
	return c.Keys[i*c.Width : (i+1)*c.Width]
}

// stateBytes is the in-memory footprint of one agg.State (count + 3
// float64 components).
const stateBytes = 32

// cuboidOverheadBytes charges the struct header and slice headers so that
// even tiny cuboids have a non-zero cache footprint.
const cuboidOverheadBytes = 96

// SizeBytes returns the cuboid's approximate resident footprint — the
// quantity the byte-budgeted cache accounts and evicts by.
func (c *Cuboid) SizeBytes() int64 {
	return cuboidOverheadBytes + 4*int64(len(c.Keys)) + stateBytes*int64(len(c.States))
}

// colBytes returns how many radix passes (low-order bytes) are needed to
// order codes below card.
func colBytes(card int) int {
	switch {
	case card <= 1<<8:
		return 1
	case card <= 1<<16:
		return 2
	case card <= 1<<24:
		return 3
	}
	return 4
}

// aggregateFrom computes the cuboid for mask by aggregating src, a
// resident ancestor (mask ⊆ src.Mask). cols gives, for each attribute of
// mask in ascending order, its column index within src's rows; cards the
// attribute's code cardinality (for radix sizing). The returned cuboid is
// sorted in natural tuple order because the permutation sort is stable and
// keyed on exactly the projected columns. sc supplies reusable sort
// scratch; per the relation.Scratch ownership rule it must be private to
// the calling goroutine.
func aggregateFrom(src *Cuboid, mask lattice.Mask, cols []int, cards []int, sc *relation.Scratch) *Cuboid {
	n := src.Rows()
	width := len(cols)
	if width == 0 {
		// Roll everything up to the single "all" cell.
		st := agg.NewState()
		for _, s := range src.States {
			st.Merge(s)
		}
		out := &Cuboid{Mask: mask, Width: 0}
		if n > 0 {
			out.States = []agg.State{st}
		}
		return out
	}
	if mask == src.Mask {
		return src
	}

	// Order rows by the projected tuple: a stable LSD radix over the
	// projected columns, least-significant column first, one counting
	// pass per significant byte. Steady state performs zero allocations —
	// all buffers come from the scratch arena.
	perm := sc.Int32s(n)[:n]
	tmp := sc.Int32s(n)[:n]
	counts := sc.Int32s(256)[:256]
	for i := range perm {
		perm[i] = int32(i)
	}
	for c := width - 1; c >= 0; c-- {
		col := cols[c]
		for shift := 0; shift < 8*colBytes(cards[c]); shift += 8 {
			clear(counts)
			for _, r := range perm {
				b := byte(src.Keys[int(r)*src.Width+col] >> shift)
				counts[b]++
			}
			var sum int32
			for b := range counts {
				counts[b], sum = sum, sum+counts[b]
			}
			for _, r := range perm {
				b := byte(src.Keys[int(r)*src.Width+col] >> shift)
				tmp[counts[b]] = r
				counts[b]++
			}
			perm, tmp = tmp, perm
		}
	}

	// Merge runs of equal projected tuples into output cells.
	outKeys := make([]uint32, 0, 4*width)
	outStates := make([]agg.State, 0, 4)
	for _, r := range perm {
		row := src.Keys[int(r)*src.Width : (int(r)+1)*src.Width]
		last := len(outStates) - 1
		if last >= 0 {
			prev := outKeys[last*width:]
			same := true
			for i, col := range cols {
				if prev[i] != row[col] {
					same = false
					break
				}
			}
			if same {
				outStates[last].Merge(src.States[r])
				continue
			}
		}
		for _, col := range cols {
			outKeys = append(outKeys, row[col])
		}
		outStates = append(outStates, src.States[r])
	}
	sc.PutInt32s(counts)
	sc.PutInt32s(tmp)
	sc.PutInt32s(perm)
	return &Cuboid{Mask: mask, Width: width, Keys: outKeys, States: outStates}
}
