package serve

import (
	"sort"

	"icebergcube/internal/agg"
	"icebergcube/internal/results"
)

// Delta is one commit's net change to a cuboid, in the cuboid's own key
// space: for each touched key (ascending tuple order, like Cuboid.Keys),
// the aggregate of the appended tuples and the aggregate of the deleted
// tuples. The deleted aggregate is enough to decide retractability per
// cell: Del.Min == cell.Min (or Del.Max == cell.Max) exactly when some
// deleted measure carries the cell's extreme, because every deleted
// measure lies inside the cell's range.
type Delta struct {
	// Width is the number of key columns.
	Width int
	// Keys holds Rows()×Width codes row-major, ascending tuple order.
	Keys []uint32
	// Add and Del hold, per key, the aggregate state of the appended and
	// deleted tuples (Count == 0 where a side is empty).
	Add []agg.State
	Del []agg.State
}

// Rows returns the number of touched keys.
func (d *Delta) Rows() int { return len(d.Add) }

// Row returns row i's key tuple.
func (d *Delta) Row(i int) []uint32 {
	return d.Keys[i*d.Width : (i+1)*d.Width]
}

// Project re-aggregates the delta onto a coarser key: cols gives, for
// each output column, its column index within this delta's rows. Added
// and deleted aggregates merge independently per projected key — merging
// is exact because appended and deleted tuple sets are each disjoint
// across source keys. The result is sorted in ascending tuple order.
func (d *Delta) Project(cols []int) *Delta {
	width := len(cols)
	type cell struct{ add, del agg.State }
	groups := make(map[string]*cell, d.Rows())
	order := make([]string, 0, d.Rows())
	key := make([]uint32, width)
	for i := 0; i < d.Rows(); i++ {
		row := d.Row(i)
		for j, c := range cols {
			key[j] = row[c]
		}
		k := encodeKey(key)
		g, ok := groups[k]
		if !ok {
			g = &cell{add: agg.NewState(), del: agg.NewState()}
			groups[k] = g
			order = append(order, k)
		}
		g.add.Merge(d.Add[i])
		g.del.Merge(d.Del[i])
	}
	sort.Slice(order, func(a, b int) bool {
		return results.CompareTuples(results.DecodeKey(order[a]), results.DecodeKey(order[b])) < 0
	})
	out := &Delta{
		Width: width,
		Keys:  make([]uint32, 0, len(order)*width),
		Add:   make([]agg.State, 0, len(order)),
		Del:   make([]agg.State, 0, len(order)),
	}
	for _, k := range order {
		out.Keys = append(out.Keys, results.DecodeKey(k)...)
		g := groups[k]
		out.Add = append(out.Add, g.add)
		out.Del = append(out.Del, g.del)
	}
	return out
}

// encodeKey renders a code tuple as a comparable map key (little-endian
// bytes, same layout as results.DecodeKey reverses).
func encodeKey(key []uint32) string {
	buf := make([]byte, 4*len(key))
	for i, v := range key {
		buf[4*i] = byte(v)
		buf[4*i+1] = byte(v >> 8)
		buf[4*i+2] = byte(v >> 16)
		buf[4*i+3] = byte(v >> 24)
	}
	return string(buf)
}

// FoldStats describes how one FoldDelta maintained its cuboid.
type FoldStats struct {
	// Retracted counts cells maintained by pure state arithmetic
	// (including pure appends); Recomputed counts cells re-derived
	// through the recompute callback because a deletion touched a
	// Min/Max extreme.
	Retracted  int
	Recomputed int
	// Inserted and Dropped count cells added to and removed from the
	// cuboid.
	Inserted int
	Dropped  int
}

// FoldDelta applies one commit's delta to an immutable base cuboid,
// returning a new cuboid (the base is never mutated — in-flight readers
// of the previous snapshot keep aggregating from it). Cells untouched by
// the delta are copied; touched cells merge the added aggregate and then
// retract the deleted one (agg.State.Retract). When a retraction is not
// exact — a deleted tuple carried the cell's Min or Max — the cell is
// re-derived through recompute, which must return the cell's exact
// current state (Count == 0 meaning the cell is gone). recompute may be
// nil when the caller has no finer source, e.g. when folding a resident
// non-leaf cuboid: then a non-retractable cell makes the whole fold
// return ok == false (the cuboid is dirty and must be lazily re-derived
// from the new leaf), and the returned cuboid is nil.
func FoldDelta(base *Cuboid, d *Delta, recompute func(key []uint32) agg.State) (*Cuboid, FoldStats, bool) {
	var stats FoldStats
	if base.Width != d.Width {
		panic("serve: delta width does not match cuboid width")
	}
	if base.Width == 0 {
		// The "all" cuboid: one cell (or none), one delta row at most.
		return foldAll(base, d, recompute, &stats)
	}
	n, m := base.Rows(), d.Rows()
	out := &Cuboid{
		Mask:   base.Mask,
		Width:  base.Width,
		Keys:   make([]uint32, 0, len(base.Keys)+len(d.Keys)),
		States: make([]agg.State, 0, n+m),
	}
	emit := func(key []uint32, st agg.State) {
		out.Keys = append(out.Keys, key...)
		out.States = append(out.States, st)
	}
	i, j := 0, 0
	for i < n || j < m {
		var cmp int
		switch {
		case i == n:
			cmp = 1
		case j == m:
			cmp = -1
		default:
			cmp = results.CompareTuples(base.Row(i), d.Row(j))
		}
		switch {
		case cmp < 0: // untouched base cell
			emit(base.Row(i), base.States[i])
			i++
		case cmp > 0: // new cell from the delta
			st, ok := applyDelta(agg.NewState(), d, j, recompute, &stats)
			if !ok {
				return nil, stats, false
			}
			if st.Count > 0 {
				emit(d.Row(j), st)
				stats.Inserted++
			}
			j++
		default: // touched cell
			st, ok := applyDelta(base.States[i], d, j, recompute, &stats)
			if !ok {
				return nil, stats, false
			}
			if st.Count > 0 {
				emit(base.Row(i), st)
			} else {
				stats.Dropped++
			}
			i++
			j++
		}
	}
	return out, stats, true
}

// applyDelta folds delta row j into state s: merge the appends, retract
// the deletes, re-derive through recompute when the retraction is not
// exact. ok == false means a re-derivation was needed but no recompute
// callback is available.
func applyDelta(s agg.State, d *Delta, j int, recompute func(key []uint32) agg.State, stats *FoldStats) (agg.State, bool) {
	s.Merge(d.Add[j])
	out, exact := s.Retract(d.Del[j])
	if exact {
		stats.Retracted++
		return out, true
	}
	if recompute == nil {
		return out, false
	}
	stats.Recomputed++
	return recompute(d.Row(j)), true
}

// foldAll is FoldDelta for the width-0 "all" cuboid.
func foldAll(base *Cuboid, d *Delta, recompute func(key []uint32) agg.State, stats *FoldStats) (*Cuboid, FoldStats, bool) {
	st := agg.NewState()
	if len(base.States) > 0 {
		st = base.States[0]
	}
	if d.Rows() > 0 {
		var ok bool
		st, ok = applyDelta(st, d, 0, recompute, stats)
		if !ok {
			return nil, *stats, false
		}
	}
	out := &Cuboid{Mask: base.Mask, Width: 0}
	if st.Count > 0 {
		out.States = []agg.State{st}
		if len(base.States) == 0 {
			stats.Inserted++
		}
	} else if len(base.States) > 0 {
		stats.Dropped++
	}
	return out, *stats, true
}
