package serve

import (
	"math"
	"testing"

	"icebergcube/internal/agg"
	"icebergcube/internal/lattice"
	"icebergcube/internal/results"
)

// stateOf aggregates measures into one state.
func stateOf(measures ...float64) agg.State {
	st := agg.NewState()
	for _, m := range measures {
		st.Add(m)
	}
	return st
}

// buildCuboid assembles a sorted cuboid from (key, measures) rows.
func buildCuboid(mask lattice.Mask, width int, keys [][]uint32, states []agg.State) *Cuboid {
	c := &Cuboid{Mask: mask, Width: width}
	for i, k := range keys {
		c.Keys = append(c.Keys, k...)
		c.States = append(c.States, states[i])
	}
	return c
}

// TestFoldDeltaMergeRetractInsertDrop: one fold exercising every branch —
// untouched copy, pure append merge, exact interior retraction, cell
// drop to zero, and new-cell insertion, with the output still sorted.
func TestFoldDeltaMergeRetractInsertDrop(t *testing.T) {
	base := buildCuboid(lattice.MaskOf(0), 1,
		[][]uint32{{0}, {1}, {2}, {4}},
		[]agg.State{stateOf(1, 5), stateOf(2, 4, 6), stateOf(7), stateOf(9)})
	d := &Delta{
		Width: 1,
		Keys:  []uint32{1, 2, 3},
		Add:   []agg.State{stateOf(8), agg.NewState(), stateOf(3)},
		Del:   []agg.State{stateOf(4), stateOf(7), agg.NewState()},
	}
	out, stats, ok := FoldDelta(base, d, nil)
	if !ok {
		t.Fatal("fold with retractable deletions reported dirty")
	}
	wantKeys := []uint32{0, 1, 3, 4}
	if len(out.States) != 4 || !equalU32(out.Keys, wantKeys) {
		t.Fatalf("keys = %v states = %d, want keys %v", out.Keys, len(out.States), wantKeys)
	}
	// Key 1: {2,4,6}+{8}-{4} → count 3, sum 16, min 2, max 8.
	if s := out.States[1]; s.Count != 3 || s.Sum != 16 || s.Min != 2 || s.Max != 8 {
		t.Fatalf("key 1 state %+v", s)
	}
	// Key 3 is the inserted cell.
	if s := out.States[2]; s.Count != 1 || s.Sum != 3 {
		t.Fatalf("inserted cell state %+v", s)
	}
	if stats.Inserted != 1 || stats.Dropped != 1 || stats.Recomputed != 0 {
		t.Fatalf("stats %+v", stats)
	}
	// The base must be untouched (immutability contract).
	if base.States[1].Count != 3 || base.Rows() != 4 {
		t.Fatalf("base mutated: %+v", base.States)
	}
}

// TestFoldDeltaRecompute: deleting a cell's extreme is non-retractable —
// without a recompute callback the fold is dirty; with one, the cell is
// re-derived exactly.
func TestFoldDeltaRecompute(t *testing.T) {
	base := buildCuboid(lattice.MaskOf(0), 1,
		[][]uint32{{5}}, []agg.State{stateOf(1, 3, 9)})
	d := &Delta{Width: 1, Keys: []uint32{5}, Add: []agg.State{agg.NewState()}, Del: []agg.State{stateOf(9)}}
	if out, _, ok := FoldDelta(base, d, nil); ok || out != nil {
		t.Fatal("extreme deletion without recompute must report dirty with a nil cuboid")
	}
	out, stats, ok := FoldDelta(base, d, func(key []uint32) agg.State {
		if key[0] != 5 {
			t.Fatalf("recompute asked for key %v", key)
		}
		return stateOf(1, 3)
	})
	if !ok || stats.Recomputed != 1 {
		t.Fatalf("recompute fold failed: ok=%v stats=%+v", ok, stats)
	}
	if s := out.States[0]; s.Count != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("recomputed state %+v", s)
	}
}

// TestFoldDeltaAllCuboid: width-0 folds maintain the single "all" cell,
// including creating it from empty and dropping it to empty.
func TestFoldDeltaAllCuboid(t *testing.T) {
	empty := &Cuboid{Mask: 0, Width: 0}
	d := &Delta{Width: 0, Keys: nil, Add: []agg.State{stateOf(2, 4)}, Del: []agg.State{agg.NewState()}}
	out, stats, ok := FoldDelta(empty, d, nil)
	if !ok || out.Rows() != 1 || out.States[0].Count != 2 || stats.Inserted != 1 {
		t.Fatalf("all-cell insert: rows=%d stats=%+v", out.Rows(), stats)
	}
	d2 := &Delta{Width: 0, Add: []agg.State{agg.NewState()}, Del: []agg.State{stateOf(2, 4)}}
	out2, stats2, ok := FoldDelta(out, d2, nil)
	if !ok || out2.Rows() != 0 || stats2.Dropped != 1 {
		t.Fatalf("all-cell drop: rows=%d stats=%+v ok=%v", out2.Rows(), stats2, ok)
	}
}

// TestDeltaProject: projection groups adds and deletes independently and
// sorts the result.
func TestDeltaProject(t *testing.T) {
	d := &Delta{
		Width: 2,
		Keys:  []uint32{0, 1, 1, 0, 1, 2},
		Add:   []agg.State{stateOf(1), stateOf(2), stateOf(4)},
		Del:   []agg.State{agg.NewState(), stateOf(5), agg.NewState()},
	}
	p := d.Project([]int{0})
	if p.Width != 1 || p.Rows() != 2 || !equalU32(p.Keys, []uint32{0, 1}) {
		t.Fatalf("projection %v (%d rows)", p.Keys, p.Rows())
	}
	if p.Add[1].Count != 2 || p.Add[1].Sum != 6 || p.Del[1].Count != 1 || p.Del[1].Sum != 5 {
		t.Fatalf("projected group 1: add %+v del %+v", p.Add[1], p.Del[1])
	}
	all := d.Project(nil)
	if all.Width != 0 || all.Rows() != 1 || all.Add[0].Count != 3 || all.Del[0].Count != 1 {
		t.Fatalf("all projection: %+v", all)
	}
}

// TestFoldDeltaEquivalentToRebuild: folding a random delta into a cuboid
// equals rebuilding the cuboid from the union of surviving states.
func TestFoldDeltaEquivalentToRebuild(t *testing.T) {
	base := buildCuboid(lattice.MaskOf(0, 1), 2,
		[][]uint32{{0, 0}, {0, 2}, {1, 1}},
		[]agg.State{stateOf(1, 2), stateOf(3), stateOf(4, 4)})
	d := &Delta{
		Width: 2,
		Keys:  []uint32{0, 0, 0, 1, 1, 1},
		Add:   []agg.State{stateOf(7), stateOf(5), agg.NewState()},
		Del:   []agg.State{stateOf(2), agg.NewState(), stateOf(4, 4)},
	}
	out, _, ok := FoldDelta(base, d, nil)
	if !ok {
		t.Fatal("dirty")
	}
	want := map[string]agg.State{
		string(encodeKey([]uint32{0, 0})): stateOf(1, 7),
		string(encodeKey([]uint32{0, 1})): stateOf(5),
		string(encodeKey([]uint32{0, 2})): stateOf(3),
	}
	if out.Rows() != len(want) {
		t.Fatalf("%d rows, want %d", out.Rows(), len(want))
	}
	for i := 0; i < out.Rows(); i++ {
		w, ok := want[encodeKey(out.Row(i))]
		if !ok {
			t.Fatalf("unexpected cell %v", out.Row(i))
		}
		s := out.States[i]
		if s.Count != w.Count || math.Abs(s.Sum-w.Sum) > 1e-9 || s.Min != w.Min || s.Max != w.Max {
			t.Fatalf("cell %v: %+v want %+v", out.Row(i), s, w)
		}
	}
	// Sorted output.
	for i := 1; i < out.Rows(); i++ {
		if results.CompareTuples(out.Row(i-1), out.Row(i)) >= 0 {
			t.Fatalf("output unsorted at %d: %v ≥ %v", i, out.Row(i-1), out.Row(i))
		}
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
