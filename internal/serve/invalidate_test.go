package serve

import (
	"testing"

	"icebergcube/internal/lattice"
)

// Regression tests for cache mutation racing a miss-coalesced
// computation: before the generation guard, a Reset or Invalidate that
// landed between a miss's aggregation and its admission was silently
// undone — the stale cuboid was admitted right after the invalidation
// returned. With incremental maintenance that is a correctness bug (an
// invalidated pre-commit cuboid must never resurface), so admissions now
// carry the cache generation observed before the computation started.

// TestResetDuringInflightComputationNotReadmitted: a Reset interleaved
// into an in-flight miss must leave the cache empty after the query
// returns.
func TestResetDuringInflightComputationNotReadmitted(t *testing.T) {
	leaf, cards := buildLeaf([]int{5, 4, 3}, 400, 7)
	s := NewServer(leaf, cards, 0)
	q := lattice.MaskOf(0, 1)
	s.testBeforeAdmit = func() { s.Reset() }
	cub, stats, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Admitted {
		t.Fatalf("stale cuboid reported admitted after Reset: %+v", stats)
	}
	checkCuboid(t, leaf, q, cub) // the answer itself must still be right
	s.testBeforeAdmit = nil
	if _, ok := s.cache.get(q); ok {
		t.Fatal("cuboid resurrected into a cache Reset was supposed to empty")
	}
	if m := s.Stats(); m.ResidentBytes != 0 || m.ResidentCuboids != 0 {
		t.Fatalf("cache not empty after Reset raced an admission: %+v", m)
	}
}

// TestInvalidateDuringInflightComputationNotReadmitted: same for a
// targeted Invalidate of the in-flight mask.
func TestInvalidateDuringInflightComputationNotReadmitted(t *testing.T) {
	leaf, cards := buildLeaf([]int{5, 4, 3}, 400, 9)
	s := NewServer(leaf, cards, 0)
	q := lattice.MaskOf(1, 2)
	s.testBeforeAdmit = func() { s.Invalidate(q) }
	if _, _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	s.testBeforeAdmit = nil
	if _, ok := s.cache.get(q); ok {
		t.Fatal("cuboid resurrected after Invalidate raced its admission")
	}
}

// TestSetBudgetDuringInflightComputation: shrinking the budget mid-miss
// must leave the byte invariant intact whether or not the admission goes
// through, and the admission must respect the new, smaller budget.
func TestSetBudgetDuringInflightComputation(t *testing.T) {
	leaf, cards := buildLeaf([]int{6, 5, 4}, 600, 11)
	s := NewServer(leaf, cards, 0)
	q := lattice.MaskOf(0, 1, 2)
	s.testBeforeAdmit = func() { s.SetBudget(1) } // smaller than any cuboid
	_, stats, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	s.testBeforeAdmit = nil
	if stats.Admitted {
		t.Fatalf("cuboid admitted past a 1-byte budget: %+v", stats)
	}
	if m := s.Stats(); m.ResidentBytes > m.BudgetBytes {
		t.Fatalf("budget invariant violated: %+v", m)
	}
}

// TestWarmSeedsResidency: Warm pre-admits cuboids that then serve as
// cache hits, preserving the recency order of the input.
func TestWarmSeedsResidency(t *testing.T) {
	leaf, cards := buildLeaf([]int{5, 4, 3}, 400, 13)
	s := NewServer(leaf, cards, 0)
	for _, q := range []lattice.Mask{lattice.MaskOf(0), lattice.MaskOf(1), lattice.MaskOf(0, 2)} {
		if _, _, err := s.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	resident := s.Resident()
	if len(resident) != 3 {
		t.Fatalf("%d resident cuboids, want 3", len(resident))
	}
	// A fresh server warmed with them serves every one as a hit, and
	// keeps the same recency order.
	s2 := NewServer(leaf, cards, 0)
	s2.Warm(resident)
	for _, cub := range resident {
		_, stats, err := s2.Query(cub.Mask)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.CacheHit {
			t.Fatalf("warmed cuboid %b missed: %+v", cub.Mask, stats)
		}
	}
	r2 := s2.Resident()
	if len(r2) != len(resident) {
		t.Fatalf("warmed residency %d, want %d", len(r2), len(resident))
	}
}
