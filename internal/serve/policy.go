// Workload-adaptive cuboid admission: a Harinarayan/Rajaraman/Ullman-style
// greedy benefit-per-byte selector over the cube lattice, driven by the
// server's per-cuboid stats table. The planner is a pure function of a
// stats snapshot — same snapshot, same seed, same plan — so re-plans are
// reproducible and testable in isolation; seeded hashes break score ties.
package serve

import (
	"math"

	"icebergcube/internal/lattice"
)

// Policy selects the cache's admission/eviction discipline.
type Policy int

const (
	// PolicyLRU is the original recency policy: admit every computed
	// cuboid, evict from the LRU tail.
	PolicyLRU Policy = iota
	// PolicyAdaptive is the workload-adaptive policy: a periodic greedy
	// benefit-per-byte plan decides which cuboids should be resident,
	// background fills materialize missing winners, and eviction removes
	// the resident cuboid with the lowest retained benefit per byte —
	// never the pinned leaf, which lives outside the cache entirely.
	PolicyAdaptive
)

func (p Policy) String() string {
	if p == PolicyAdaptive {
		return "adaptive"
	}
	return "lru"
}

// DefaultReplanEvery is the re-plan period in foreground queries when the
// caller does not choose one.
const DefaultReplanEvery = 64

// maxPlanCandidates bounds the candidate set one plan considers (observed
// shapes plus pairwise unions); maxPlanWinners bounds a plan's output so a
// single re-plan cannot queue unbounded background work.
const (
	maxPlanCandidates = 256
	maxPlanWinners    = 64
)

// PolicyOptions configures the adaptive policy on a Server.
type PolicyOptions struct {
	// Policy selects LRU or adaptive admission.
	Policy Policy
	// Seed drives the planner's deterministic tie-breaks (0 = 1).
	Seed int64
	// ReplanEvery re-plans after this many foreground queries (≤ 0 =
	// DefaultReplanEvery). Commits always trigger a re-plan regardless.
	ReplanEvery int
}

func (o PolicyOptions) withDefaults() PolicyOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ReplanEvery <= 0 {
		o.ReplanEvery = DefaultReplanEvery
	}
	return o
}

// tieKey mixes the seed and a mask into a deterministic 64-bit tie-break
// key (splitmix64 finalizer). Lower keys are favored by the planner and
// survive eviction longer, so equal-score decisions are stable for a seed
// but decorrelated across seeds.
func tieKey(seed int64, m lattice.Mask) uint64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(m)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// planInput is everything a re-plan reads: the stats snapshot plus the
// leaf's shape (estimates for never-computed candidates derive from the
// per-dimension cardinalities).
type planInput struct {
	stats    []CuboidStats // sorted by mask (statsTable.snapshot order)
	leafMask lattice.Mask
	leafRows int
	cards    []int
	budget   int64
	seed     int64
}

// cuboidBytesEstimate is the footprint model for a cuboid that has never
// been computed: the cache's own SizeBytes formula applied to a row
// estimate.
func cuboidBytesEstimate(rows, width int) int64 {
	return cuboidOverheadBytes + int64(rows)*(4*int64(width)+stateBytes)
}

// estRows bounds a never-computed cuboid's cell count by the product of
// its dimensions' cardinalities, capped at the leaf's cell count (a
// cuboid can never have more cells than its finest ancestor).
func estRows(m lattice.Mask, leafRows int, cards []int) int {
	rows := 1
	for _, d := range m.Dims() {
		if d < len(cards) && cards[d] > 0 {
			rows *= cards[d]
		}
		if rows >= leafRows {
			return leafRows
		}
	}
	return rows
}

// planEntry is one candidate's working state during the greedy selection.
type planEntry struct {
	mask    lattice.Mask
	queries int64 // observed foreground demand (hits + misses)
	rows    int   // measured, else estimated
	bytes   int64 // measured, else estimated
}

// planResult is a re-plan's output: the winners in admission-priority
// order (highest marginal benefit per byte first) and the retained-benefit
// scores eviction consults — winners carry their selection-time marginal
// score, everything else its residual standalone score.
type planResult struct {
	winners []lattice.Mask
	scores  map[lattice.Mask]float64
}

// planAdaptive runs the greedy benefit-per-byte selection. Benefit of
// materializing candidate c = Σ over observed query shapes d ⊆ c of
// queries(d) × (cost(d | chosen so far) − rows(c)), where cost(d | S) is
// the cell count of d's smallest ancestor in S ∪ {leaf}; each round picks
// the candidate with the highest benefit normalized by its footprint,
// until the budget is spent or no candidate helps. Fully deterministic
// given the input: candidates are visited in mask order and score ties
// break by seeded tieKey, then mask.
func planAdaptive(in planInput) planResult {
	res := planResult{scores: make(map[lattice.Mask]float64, len(in.stats))}
	if in.leafRows <= 0 || in.budget <= 0 {
		return res
	}

	// Observed demand, skipping the leaf (pinned outside the cache).
	observed := make([]planEntry, 0, len(in.stats))
	for _, s := range in.stats {
		if s.Mask == in.leafMask || s.Queries() == 0 {
			continue
		}
		e := planEntry{mask: s.Mask, queries: s.Queries(), rows: s.Rows, bytes: s.Bytes}
		if e.rows == 0 {
			e.rows = estRows(e.mask, in.leafRows, in.cards)
		}
		if e.bytes == 0 {
			e.bytes = cuboidBytesEstimate(e.rows, e.mask.Count())
		}
		observed = append(observed, e)
	}
	if len(observed) == 0 {
		return res
	}

	// Candidates: every observed shape, then pairwise unions (covering
	// ancestors that can serve several observed shapes at once), in mask
	// order, capped.
	candidates := append([]planEntry(nil), observed...)
	have := make(map[lattice.Mask]bool, len(observed))
	for _, e := range observed {
		have[e.mask] = true
	}
	for i := 0; i < len(observed) && len(candidates) < maxPlanCandidates; i++ {
		for j := i + 1; j < len(observed) && len(candidates) < maxPlanCandidates; j++ {
			u := observed[i].mask | observed[j].mask
			if u == in.leafMask || have[u] {
				continue
			}
			have[u] = true
			rows := estRows(u, in.leafRows, in.cards)
			candidates = append(candidates, planEntry{
				mask:  u,
				rows:  rows,
				bytes: cuboidBytesEstimate(rows, u.Count()),
			})
		}
	}

	// cost[d] = cells of d's smallest ancestor among winners ∪ {leaf}.
	cost := make(map[lattice.Mask]int, len(observed))
	for _, e := range observed {
		cost[e.mask] = in.leafRows
	}
	benefit := func(c planEntry) float64 {
		var b float64
		for _, d := range observed {
			if !d.mask.SubsetOf(c.mask) {
				continue
			}
			if saved := cost[d.mask] - c.rows; saved > 0 {
				b += float64(d.queries) * float64(saved)
			}
		}
		return b
	}

	remaining := in.budget
	chosen := make(map[lattice.Mask]bool)
	for len(res.winners) < maxPlanWinners {
		bestIdx, bestScore, bestKey := -1, 0.0, uint64(0)
		for i, c := range candidates {
			if chosen[c.mask] || c.bytes > remaining || c.bytes <= 0 {
				continue
			}
			score := benefit(c) / float64(c.bytes)
			if score <= 0 {
				continue
			}
			key := tieKey(in.seed, c.mask)
			better := score > bestScore ||
				(score == bestScore && (key < bestKey ||
					(key == bestKey && (bestIdx < 0 || c.mask < candidates[bestIdx].mask))))
			if bestIdx < 0 || better {
				bestIdx, bestScore, bestKey = i, score, key
			}
		}
		if bestIdx < 0 {
			break
		}
		w := candidates[bestIdx]
		chosen[w.mask] = true
		remaining -= w.bytes
		res.winners = append(res.winners, w.mask)
		res.scores[w.mask] = bestScore
		for _, d := range observed {
			if d.mask.SubsetOf(w.mask) && w.rows < cost[d.mask] {
				cost[d.mask] = w.rows
			}
		}
	}

	// Residual scores for everything observed but not selected: the
	// standalone value the cuboid would retain if resident — demand times
	// the cells a hit saves over re-deriving from the winners' cover, per
	// byte. Eviction uses these to rank non-winner residents; a shape the
	// plan has no use for scores 0 and is the first victim.
	for _, d := range observed {
		if chosen[d.mask] {
			continue
		}
		saved := cost[d.mask] - d.rows
		if saved < 0 {
			saved = 0
		}
		res.scores[d.mask] = float64(d.queries) * float64(saved) / float64(d.bytes)
	}
	return res
}

// admissionScore is the cost-aware score of a cuboid computed on the miss
// path, in the planner's units (demand × cells saved per future hit,
// per byte): queries is the shape's observed demand including the query
// being served, scanned the cells just aggregated to derive it. The cache
// admits it only by evicting strictly less valuable residents.
func admissionScore(queries int64, scanned, rows int, bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	saved := scanned - rows
	if saved < 0 {
		saved = 0
	}
	return float64(queries) * float64(saved) / float64(bytes)
}

// infScore pins a score above any finite admission score; Warm uses it so
// commit-carried residents survive until the first re-plan rescores them.
var infScore = math.Inf(1)
