package serve

import (
	"math/rand"
	"reflect"
	"testing"

	"icebergcube/internal/lattice"
)

// TestPlanAdaptiveDeterministic: a re-plan is a pure function of its
// input — same snapshot, same seed, same winners and scores.
func TestPlanAdaptiveDeterministic(t *testing.T) {
	cards := []int{5, 300, 4, 70}
	leaf, _ := buildLeaf(cards, 4000, 1)
	srv := NewServer(leaf, cards, 1<<20)
	rng := rand.New(rand.NewSource(7))
	masks := lattice.All(len(cards))
	for i := 0; i < 300; i++ {
		if _, _, err := srv.Query(masks[rng.Intn(len(masks))]); err != nil {
			t.Fatal(err)
		}
	}
	in := planInput{
		stats:    srv.stats.snapshot(),
		leafMask: leaf.Mask,
		leafRows: leaf.Rows(),
		cards:    cards,
		budget:   256 << 10,
		seed:     42,
	}
	a := planAdaptive(in)
	b := planAdaptive(in)
	if !reflect.DeepEqual(a.winners, b.winners) {
		t.Fatalf("winners differ across identical plans: %v vs %v", a.winners, b.winners)
	}
	if !reflect.DeepEqual(a.scores, b.scores) {
		t.Fatalf("scores differ across identical plans")
	}
	if len(a.winners) == 0 {
		t.Fatal("plan selected nothing despite observed demand and budget")
	}
	// Winners must fit the budget under the planner's own size model.
	var bytes int64
	for _, w := range a.winners {
		for _, s := range in.stats {
			if s.Mask == w && s.Bytes > 0 {
				bytes += s.Bytes
			}
		}
	}
	if bytes > in.budget {
		t.Fatalf("winners' measured bytes %d exceed budget %d", bytes, in.budget)
	}
}

// TestAdaptiveAnswersMatchLRU: the serve-level equivalence oracle — two
// servers over the same leaf, one LRU, one adaptive (synchronous mode),
// fed the same query stream, return byte-identical cuboids for every
// query. Residency decides speed, never answers.
func TestAdaptiveAnswersMatchLRU(t *testing.T) {
	cards := []int{6, 40, 5, 25}
	leaf, _ := buildLeaf(cards, 3000, 3)
	lru := NewServer(leaf, cards, 64<<10)
	ada := NewServer(leaf, cards, 64<<10)
	ada.SetPolicy(PolicyOptions{Policy: PolicyAdaptive, Seed: 9, ReplanEvery: 16}, nil)

	rng := rand.New(rand.NewSource(11))
	masks := append(lattice.All(len(cards)), 0)
	for i := 0; i < 400; i++ {
		q := masks[rng.Intn(len(masks))]
		a, _, err := lru.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := ada.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.Rows() != b.Rows() {
			t.Fatalf("mask %b: %d cells under LRU, %d under adaptive", q, a.Rows(), b.Rows())
		}
		if !reflect.DeepEqual(a.Keys, b.Keys) || !reflect.DeepEqual(a.States, b.States) {
			t.Fatalf("mask %b: answers differ between policies", q)
		}
		checkCuboid(t, leaf, q, b)
	}
	if ada.Stats().Replans == 0 {
		t.Fatal("adaptive server never re-planned")
	}
}

// TestAdaptiveKeepsHotSetUnderPressure: with a budget sized for the hot
// shapes only, a stream of one-off bulky queries must not wash out the
// hot working set — the structural advantage over LRU. The same stream is
// fed to both policies; adaptive must end with a strictly better hit
// count.
func TestAdaptiveKeepsHotSetUnderPressure(t *testing.T) {
	// Dims 2 and 3 are sized so their single-dim cuboids fit the budget
	// (and therefore can displace the hot set under LRU) while their
	// combinations do not (rejected outright under both policies).
	cards := []int{4, 5, 18, 16}
	leaf, _ := buildLeaf(cards, 6000, 5)

	hot := []lattice.Mask{lattice.MaskOf(0), lattice.MaskOf(1), lattice.MaskOf(0, 1)}
	bulky := []lattice.Mask{lattice.MaskOf(2), lattice.MaskOf(3)}
	// Budget: all hot shapes fit; any bulky shape displaces one.
	var budget int64
	srvProbe := NewServer(leaf, cards, 1<<30)
	for _, h := range hot {
		cub, _, err := srvProbe.Query(h)
		if err != nil {
			t.Fatal(err)
		}
		budget += cub.SizeBytes()
	}

	run := func(srv *Server) (hits int64) {
		rng := rand.New(rand.NewSource(17))
		for i := 0; i < 600; i++ {
			var q lattice.Mask
			if i%4 == 3 {
				q = bulky[rng.Intn(len(bulky))]
			} else {
				q = hot[rng.Intn(len(hot))]
			}
			if _, _, err := srv.Query(q); err != nil {
				t.Fatal(err)
			}
		}
		return srv.Stats().CacheHits
	}

	lru := NewServer(leaf, cards, budget)
	ada := NewServer(leaf, cards, budget)
	ada.SetPolicy(PolicyOptions{Policy: PolicyAdaptive, Seed: 1, ReplanEvery: 32}, nil)
	lruHits, adaHits := run(lru), run(ada)
	if adaHits <= lruHits {
		t.Fatalf("adaptive hits %d not better than LRU hits %d at budget %d", adaHits, lruHits, budget)
	}
}

// TestAdaptiveEvictionIsCostAware: a resident with a higher retained
// score survives the admission of a lower-scored newcomer — the newcomer
// is rejected instead.
func TestAdaptiveEvictionIsCostAware(t *testing.T) {
	cards := []int{8, 9}
	leaf, _ := buildLeaf(cards, 500, 2)
	c := newCache(1 << 30)
	c.setPolicy(true, 1)

	srv := NewServer(leaf, cards, 1<<30)
	a, _, err := srv.Query(lattice.MaskOf(0))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := srv.Query(lattice.MaskOf(1))
	if err != nil {
		t.Fatal(err)
	}
	// Budget fits either one of them, but not both.
	budget := a.SizeBytes()
	if b.SizeBytes() > budget {
		budget = b.SizeBytes()
	}
	c.setBudget(budget)
	if ok, _ := c.add(a.Mask, a, c.generation(), 10.0); !ok {
		t.Fatal("first admission rejected")
	}
	if ok, _ := c.add(b.Mask, b, c.generation(), 5.0); ok {
		t.Fatal("lower-scored newcomer displaced a higher-scored resident")
	}
	if !c.peek(a.Mask) || c.peek(b.Mask) {
		t.Fatal("resident set wrong after rejected admission")
	}
	// A higher-scored newcomer does displace.
	if ok, _ := c.add(b.Mask, b, c.generation(), 20.0); !ok {
		t.Fatal("higher-scored newcomer rejected")
	}
	if c.peek(a.Mask) || !c.peek(b.Mask) {
		t.Fatal("resident set wrong after cost-aware eviction")
	}
}

// TestPrecomputeBudgetDeterministic: Precompute admits in benefit order
// under the byte budget — the admitted set depends on the mask set, not
// the caller's order — and reports what was computed but not retained.
func TestPrecomputeBudgetDeterministic(t *testing.T) {
	cards := []int{5, 300, 4, 70}
	leaf, _ := buildLeaf(cards, 4000, 1)

	masks := []lattice.Mask{
		lattice.MaskOf(0), lattice.MaskOf(1), lattice.MaskOf(2),
		lattice.MaskOf(0, 2), lattice.MaskOf(1, 3), lattice.MaskOf(3),
	}
	perm := []lattice.Mask{
		lattice.MaskOf(1, 3), lattice.MaskOf(3), lattice.MaskOf(0, 2),
		lattice.MaskOf(2), lattice.MaskOf(0), lattice.MaskOf(1),
	}

	residentAfter := func(order []lattice.Mask) (map[lattice.Mask]bool, int, []lattice.Mask) {
		srv := NewServer(leaf, cards, 8<<10) // tight: not all fit
		admitted, skipped := srv.Precompute(order)
		return srv.cache.residentSet(), admitted, skipped
	}
	r1, n1, s1 := residentAfter(masks)
	r2, n2, s2 := residentAfter(perm)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("resident set depends on caller order: %v vs %v", r1, r2)
	}
	if n1 != n2 {
		t.Fatalf("admitted count depends on caller order: %d vs %d", n1, n2)
	}
	if len(s1) == 0 {
		t.Fatal("expected some masks skipped under a tight budget")
	}
	if len(s1) != len(s2) {
		t.Fatalf("skipped count depends on caller order: %v vs %v", s1, s2)
	}
	for _, sk := range s1 {
		if r1[sk] {
			t.Fatalf("mask %b both skipped and resident", sk)
		}
	}
	if n1+len(s1) != len(masks) {
		t.Fatalf("admitted %d + skipped %d != requested %d", n1, len(s1), len(masks))
	}
}

// TestBackgroundFillsMaterializeWinners: with an executor attached, a
// re-plan's winners are computed off the query path and admitted; Wait
// observes the quiescent cache.
func TestBackgroundFillsMaterializeWinners(t *testing.T) {
	cards := []int{6, 40, 5}
	leaf, _ := buildLeaf(cards, 2000, 4)
	srv := NewServer(leaf, cards, 1<<20)
	bg := NewBackground(nil)
	defer bg.Close()
	srv.SetPolicy(PolicyOptions{Policy: PolicyAdaptive, Seed: 3, ReplanEvery: 8}, bg)

	rng := rand.New(rand.NewSource(6))
	masks := lattice.All(len(cards))
	for i := 0; i < 100; i++ {
		if _, _, err := srv.Query(masks[rng.Intn(len(masks))]); err != nil {
			t.Fatal(err)
		}
	}
	bg.Wait()
	m := srv.Stats()
	if m.Replans == 0 {
		t.Fatal("no background re-plan ran")
	}
	planned := srv.planned.Load()
	if planned == nil || len(*planned) == 0 {
		t.Fatal("no winners planned")
	}
	for w := range *planned {
		if !srv.cache.peek(w) {
			t.Fatalf("planned winner %b not resident after Wait", w)
		}
	}
}

// TestHandoffCarriesPolicyAndStats: the commit path's Handoff moves the
// policy, executor and workload model to the successor and retires the
// predecessor.
func TestHandoffCarriesPolicyAndStats(t *testing.T) {
	cards := []int{6, 40, 5}
	leaf, _ := buildLeaf(cards, 2000, 4)
	old := NewServer(leaf, cards, 1<<20)
	old.SetPolicy(PolicyOptions{Policy: PolicyAdaptive, Seed: 8, ReplanEvery: 16}, nil)
	for i := 0; i < 20; i++ {
		if _, _, err := old.Query(lattice.MaskOf(0)); err != nil {
			t.Fatal(err)
		}
	}
	next := NewServer(leaf, cards, 1<<20)
	old.Handoff(next)

	if got := next.Policy(); got.Policy != PolicyAdaptive || got.Seed != 8 || got.ReplanEvery != 16 {
		t.Fatalf("policy not carried: %+v", got)
	}
	if !old.retired.Load() {
		t.Fatal("predecessor not retired")
	}
	if d := next.stats.demand(lattice.MaskOf(0)); d != 20 {
		t.Fatalf("demand not adopted: got %d want 20", d)
	}
	// The forced re-plan lands on the successor's next query.
	if _, _, err := next.Query(lattice.MaskOf(0)); err != nil {
		t.Fatal(err)
	}
	if next.Stats().Replans == 0 {
		t.Fatal("handoff did not trigger a re-plan on the successor")
	}
}
