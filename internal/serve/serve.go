// Package serve is the lattice-aware online serving layer over a
// materialized finest cuboid (§5.1). Instead of rescanning every leaf
// cell per query — O(leaf) work however coarse the group-by — it keeps a
// registry of resident cuboids keyed by lattice.Mask and answers each
// query from the smallest resident ancestor (Gray et al.'s cube-lattice
// observation: any cuboid is derivable from any superset cuboid by
// further aggregation). Computed cuboids are admitted into a
// byte-budgeted cache, so repeated and nearby query shapes amortize to
// near-lookup cost; the leaf itself is pinned outside the cache and never
// evicted. Concurrent identical misses are coalesced so each cuboid is
// computed once (singleflight).
//
// Residency is governed by one of two policies. The default LRU admits
// every computed cuboid and evicts by recency. The adaptive policy
// (PolicyAdaptive) instead tracks per-cuboid demand and measured derive
// cost in a stats table, periodically runs a greedy benefit-per-byte plan
// over the lattice (policy.go), materializes missing winners in the
// background (background.go), and evicts the resident cuboid with the
// lowest retained benefit per byte. Both policies serve byte-identical
// answers — residency only decides how fast, never what.
package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"icebergcube/internal/lattice"
	"icebergcube/internal/relation"
)

// DefaultBudgetBytes is the cache budget used when the caller passes a
// non-positive budget: large enough to hold the hot cuboids of any of the
// paper's workloads, small enough to stay irrelevant next to the leaf.
const DefaultBudgetBytes = 64 << 20

// QueryStats describes how one query was served — threaded back to the
// caller for observability and asserted on by the serving experiments.
type QueryStats struct {
	// Query is the requested group-by.
	Query lattice.Mask
	// ServedFrom is the resident cuboid the answer came from: Query
	// itself on a cache hit, else the smallest resident ancestor that was
	// aggregated.
	ServedFrom lattice.Mask
	// CacheHit reports the answer was already resident (no aggregation).
	CacheHit bool
	// Coalesced reports this query waited on an identical in-flight miss
	// instead of computing its own copy.
	Coalesced bool
	// CellsScanned is the number of ancestor cells aggregated (0 on a
	// hit).
	CellsScanned int
	// ResultCells is the answer cuboid's cell count.
	ResultCells int
	// Admitted reports the computed cuboid was retained in the cache.
	Admitted bool
	// Evicted is the number of cuboids evicted to admit this one.
	Evicted int
}

// Metrics are the server's cumulative counters.
type Metrics struct {
	// Queries is the total number of Query calls.
	Queries int64
	// CacheHits counts queries answered from a resident cuboid (leaf
	// included) without aggregation.
	CacheHits int64
	// Coalesced counts queries that piggybacked on an identical
	// in-flight miss.
	Coalesced int64
	// Computes counts foreground aggregations performed (cache misses
	// that did work; background fills are counted separately).
	Computes int64
	// LeafAggregations / AncestorAggregations split Computes by source:
	// the pinned leaf vs a smaller cached ancestor.
	LeafAggregations     int64
	AncestorAggregations int64
	// Admitted / Rejected / Evictions are cache admission-control
	// counters; EvictedBytes totals the evicted cuboids' footprint.
	Admitted     int64
	Rejected     int64
	Evictions    int64
	EvictedBytes int64
	// BackgroundFills counts cuboids computed by the background
	// materializer on the adaptive planner's behalf; BackgroundAdmitted
	// counts how many of those the cache retained.
	BackgroundFills    int64
	BackgroundAdmitted int64
	// Replans counts adaptive planning passes (query-count periodic and
	// commit-triggered).
	Replans int64
	// Canceled counts queries abandoned by context cancellation before an
	// answer was produced (at entry, while waiting on a coalesced flight,
	// or before becoming the flight leader).
	Canceled int64
	// ResidentBytes / ResidentCuboids describe the cache's current
	// occupancy (the pinned leaf is excluded). ResidentBytes ≤
	// BudgetBytes always.
	ResidentBytes   int64
	ResidentCuboids int
	// BudgetBytes is the configured cache budget.
	BudgetBytes int64
	// LeafBytes is the pinned leaf's footprint (not budgeted).
	LeafBytes int64
	// Policy names the active admission policy ("lru" or "adaptive").
	Policy string
}

// Server answers group-by queries over one materialized leaf cuboid.
// Safe for concurrent use.
type Server struct {
	leaf  *Cuboid
	cards []int // per leaf column: code cardinality, for radix sizing
	cache *cache
	stats *statsTable

	mu       sync.Mutex
	inflight map[lattice.Mask]*flight

	scratch sync.Pool // *relation.Scratch, one per aggregating goroutine

	// opt is the active policy; bg the optional background executor; both
	// swap atomically (SetPolicy / Handoff).
	opt atomic.Pointer[PolicyOptions]
	bg  atomic.Pointer[Background]
	// planned is the last re-plan's winner set (CuboidStats.Planned).
	planned atomic.Pointer[map[lattice.Mask]bool]

	// replanTick counts foreground queries toward the periodic re-plan;
	// replanNeeded forces one at the next opportunity (policy switch,
	// commit handoff without an executor); planning serializes passes.
	replanTick   atomic.Int64
	replanNeeded atomic.Bool
	planning     atomic.Bool

	// retired marks the server superseded by a commit: background work
	// for it is dropped (the version stays queryable for pinned readers).
	retired atomic.Bool

	// testBeforeAdmit, when set, runs between a miss's aggregation and
	// its cache admission — the window the generation guard protects.
	// Tests use it to interleave Reset/Invalidate/SetBudget
	// deterministically with an in-flight computation.
	testBeforeAdmit func()

	queries    atomic.Int64
	hits       atomic.Int64
	coalesced  atomic.Int64
	canceled   atomic.Int64
	leafAggs   atomic.Int64
	ancAggs    atomic.Int64
	bgFills    atomic.Int64
	bgAdmitted atomic.Int64
	replans    atomic.Int64
}

// flight is one in-progress cuboid computation; duplicate queriers wait
// on done and share the result.
type flight struct {
	done  chan struct{}
	cub   *Cuboid
	stats QueryStats
}

// NewServer builds a server over a leaf cuboid with the default LRU
// policy. cards gives the code cardinality of each leaf column (used to
// size radix passes and the planner's size estimates); budgetBytes ≤ 0
// selects DefaultBudgetBytes. Use SetPolicy to switch to the adaptive
// policy.
func NewServer(leaf *Cuboid, cards []int, budgetBytes int64) *Server {
	if budgetBytes <= 0 {
		budgetBytes = DefaultBudgetBytes
	}
	s := &Server{
		leaf:     leaf,
		cards:    append([]int(nil), cards...),
		cache:    newCache(budgetBytes),
		stats:    newStatsTable(),
		inflight: make(map[lattice.Mask]*flight),
	}
	opt := PolicyOptions{Policy: PolicyLRU}.withDefaults()
	s.opt.Store(&opt)
	s.scratch.New = func() any { return relation.NewScratch() }
	return s
}

// Leaf returns the pinned leaf cuboid.
func (s *Server) Leaf() *Cuboid { return s.leaf }

// SetBudget changes the cache byte budget, evicting as needed.
func (s *Server) SetBudget(budgetBytes int64) {
	if budgetBytes <= 0 {
		budgetBytes = DefaultBudgetBytes
	}
	s.cache.setBudget(budgetBytes)
}

// Reset drops every cached cuboid (the leaf stays). Benchmarks use it to
// measure the cold path.
func (s *Server) Reset() { s.cache.reset() }

// Invalidate drops one cached cuboid if resident.
func (s *Server) Invalidate(q lattice.Mask) { s.cache.remove(q) }

// SetPolicy installs the admission policy and optional background
// executor (nil keeps fills and re-plans synchronous: a re-plan then runs
// inline on the query that triggers it and materializes missing winners
// before returning — the deterministic mode tests and the adaptive-vs-LRU
// oracle use). Switching to the adaptive policy schedules an immediate
// re-plan; switching back to LRU stops planning but keeps the resident
// set. Safe to call while queries are in flight.
func (s *Server) SetPolicy(o PolicyOptions, bg *Background) {
	o = o.withDefaults()
	s.opt.Store(&o)
	s.bg.Store(bg)
	s.cache.setPolicy(o.Policy == PolicyAdaptive, o.Seed)
	if o.Policy == PolicyAdaptive {
		s.replanNeeded.Store(true)
	}
}

// Policy returns the active policy options.
func (s *Server) Policy() PolicyOptions { return *s.opt.Load() }

// Retire marks the server superseded by a newer version: queued and
// future background work for it is dropped. Pinned readers keep querying
// it; retirement only stops speculative cache work.
func (s *Server) Retire() { s.retired.Store(true) }

// Handoff carries the serving policy, background executor and workload
// model to the successor server and retires this one — the commit path
// calls it after warming the successor with the folded residents, so
// demand observed on version v keeps steering version v+1's plan, and a
// commit acts as a re-plan trigger (asynchronously when an executor is
// attached, at the successor's next query otherwise).
func (s *Server) Handoff(next *Server) {
	next.stats.adopt(s.stats.snapshot())
	opt := *s.opt.Load()
	bg := s.bg.Load()
	next.SetPolicy(opt, bg)
	s.Retire()
	if opt.Policy == PolicyAdaptive && bg != nil {
		bg.submitReplan(next)
	}
}

// Query returns the cuboid for group-by q (bit i = leaf column i) along
// with how it was served. The returned cuboid is immutable and remains
// valid after eviction.
func (s *Server) Query(q lattice.Mask) (*Cuboid, QueryStats, error) {
	return s.QueryCtx(context.Background(), q)
}

// QueryCtx is Query with caller cancellation: the context is checked at
// entry, before this query becomes the singleflight leader for a miss,
// and while waiting on a coalesced in-flight computation. Once a
// computation has started it always runs to completion — it serves every
// coalesced waiter and the cache, and an in-memory derivation is short —
// so cancelling stops a query from *starting* aggregation work or from
// blocking on someone else's, never tears a flight other queries depend
// on.
func (s *Server) QueryCtx(ctx context.Context, q lattice.Mask) (*Cuboid, QueryStats, error) {
	if !q.SubsetOf(s.leaf.Mask) {
		return nil, QueryStats{}, fmt.Errorf("serve: mask %b is not a subset of the leaf %b", q, s.leaf.Mask)
	}
	if err := ctx.Err(); err != nil {
		s.canceled.Add(1)
		return nil, QueryStats{}, err
	}
	s.queries.Add(1)
	stats := QueryStats{Query: q, ServedFrom: q}
	if q == s.leaf.Mask {
		s.hits.Add(1)
		stats.CacheHit = true
		stats.ResultCells = s.leaf.Rows()
		return s.leaf, stats, nil
	}
	if cub, ok := s.cache.get(q); ok {
		s.hits.Add(1)
		stats.CacheHit = true
		stats.ResultCells = cub.Rows()
		s.stats.recordHit(q, cub.Rows(), cub.SizeBytes())
		s.maybeReplan()
		return cub, stats, nil
	}

	// Miss: coalesce with an identical in-flight computation, else
	// become the filler for this mask.
	s.mu.Lock()
	if f, ok := s.inflight[q]; ok {
		s.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			s.canceled.Add(1)
			return nil, QueryStats{}, ctx.Err()
		}
		s.coalesced.Add(1)
		stats = f.stats
		stats.Coalesced = true
		// A coalesced query is demand evidence like any hit.
		s.stats.recordHit(q, f.cub.Rows(), f.cub.SizeBytes())
		s.maybeReplan()
		return f.cub, stats, nil
	}
	if err := ctx.Err(); err != nil {
		// Last check before committing to the derivation.
		s.mu.Unlock()
		s.canceled.Add(1)
		return nil, QueryStats{}, err
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[q] = f
	s.mu.Unlock()

	cub, st := s.compute(q, false, 0)
	f.cub, f.stats = cub, st
	s.mu.Lock()
	delete(s.inflight, q)
	s.mu.Unlock()
	close(f.done)
	s.maybeReplan()
	return cub, st, nil
}

// derive aggregates q from the smallest resident ancestor (leaf included)
// without touching the cache's admission state. It returns the cuboid,
// the ancestor it came from, and the cells scanned. gen is the cache
// generation observed before any resident state was read — admissions
// derived from this result must carry it.
func (s *Server) derive(q lattice.Mask) (cub *Cuboid, from lattice.Mask, scanned int, gen uint64) {
	// Capture the cache generation before reading any resident state: if
	// a Reset or Invalidate lands while we aggregate, the admission below
	// is rejected instead of resurrecting a cuboid the invalidation was
	// meant to drop. The served answer itself stays valid — it was
	// aggregated from the immutable leaf or an immutable ancestor copy.
	gen = s.cache.generation()

	// Candidate ancestors: every cached cuboid plus the pinned leaf.
	resident := s.cache.residentMasks(make([]maskSize, 0, 16))
	resident = append(resident, maskSize{mask: s.leaf.Mask, rows: s.leaf.Rows()})
	rows := make(map[lattice.Mask]int, len(resident))
	masks := make([]lattice.Mask, 0, len(resident))
	for _, ms := range resident {
		if _, ok := rows[ms.mask]; !ok {
			rows[ms.mask] = ms.rows
			masks = append(masks, ms.mask)
		}
	}
	from, _ = lattice.SmallestAncestor(q, masks, func(m lattice.Mask) int { return rows[m] })

	src := s.leaf
	if from != s.leaf.Mask {
		if c, ok := s.cache.get(from); ok {
			src = c
		} else {
			// Evicted between selection and fetch; fall back to the leaf.
			from = s.leaf.Mask
		}
	}

	// Column positions of q's attributes within src's rows, and their
	// cardinalities for the radix sort.
	srcDims := src.Mask.Dims()
	srcPos := make(map[int]int, len(srcDims))
	for i, d := range srcDims {
		srcPos[d] = i
	}
	qDims := q.Dims()
	cols := make([]int, len(qDims))
	cards := make([]int, len(qDims))
	for i, d := range qDims {
		cols[i] = srcPos[d]
		cards[i] = s.cards[d]
	}

	sc := s.scratch.Get().(*relation.Scratch)
	cub = aggregateFrom(src, q, cols, cards, sc)
	s.scratch.Put(sc)
	return cub, from, src.Rows(), gen
}

// compute aggregates q from the smallest resident ancestor and admits the
// result into the cache. Background fills (the adaptive planner's
// materializations) record into the stats table as fills — not demand —
// and admit with the planner's score instead of the admission score.
func (s *Server) compute(q lattice.Mask, background bool, planScore float64) (*Cuboid, QueryStats) {
	stats := QueryStats{Query: q}
	cub, from, scanned, gen := s.derive(q)
	rows, size := cub.Rows(), cub.SizeBytes()

	score := planScore
	if background {
		s.bgFills.Add(1)
		s.stats.recordFill(q, rows, size, scanned)
	} else {
		if from == s.leaf.Mask {
			s.leafAggs.Add(1)
		} else {
			s.ancAggs.Add(1)
		}
		s.stats.recordMiss(q, rows, size, scanned)
		score = admissionScore(s.stats.demand(q), scanned, rows, size)
	}

	if s.testBeforeAdmit != nil {
		s.testBeforeAdmit()
	}

	stats.ServedFrom = from
	stats.CellsScanned = scanned
	stats.ResultCells = rows
	stats.Admitted, stats.Evicted = s.cache.add(q, cub, gen, score)
	if background && stats.Admitted {
		s.bgAdmitted.Add(1)
	}
	return cub, stats
}

// fill is one background materialization: compute q and admit it with the
// planner's score, through the same singleflight and generation machinery
// as a foreground miss, so a fill can never race an invalidation or a
// committing writer into an inconsistent resident set. Foreground queries
// arriving while the fill is in flight coalesce onto it. A fill for a
// mask that is already resident, already being computed, or belongs to a
// retired server is skipped.
func (s *Server) fill(q lattice.Mask, score float64) {
	if s.retired.Load() || q == s.leaf.Mask || !q.SubsetOf(s.leaf.Mask) {
		return
	}
	if s.cache.peek(q) {
		return
	}
	s.mu.Lock()
	if _, ok := s.inflight[q]; ok {
		s.mu.Unlock()
		return
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[q] = f
	s.mu.Unlock()

	cub, st := s.compute(q, true, score)
	f.cub, f.stats = cub, st
	s.mu.Lock()
	delete(s.inflight, q)
	s.mu.Unlock()
	close(f.done)
}

// maybeReplan advances the periodic re-plan counter on a foreground query
// and triggers a pass when due (or when one was forced by a policy switch
// or commit handoff).
func (s *Server) maybeReplan() {
	opt := s.opt.Load()
	if opt.Policy != PolicyAdaptive || s.retired.Load() {
		return
	}
	tick := s.replanTick.Add(1)
	if s.replanNeeded.CompareAndSwap(true, false) || tick%int64(opt.ReplanEvery) == 0 {
		if bg := s.bg.Load(); bg != nil {
			bg.submitReplan(s)
		} else {
			s.Replan()
		}
	}
}

// Replan runs one adaptive planning pass now: snapshot the stats table,
// run the greedy benefit-per-byte selection, install the retained-benefit
// scores on the cache, and materialize winners that are not resident —
// via the background executor when one is attached, synchronously
// otherwise. A no-op under LRU; concurrent calls collapse to one pass.
// The pass is deterministic given the stats snapshot and the seed.
func (s *Server) Replan() {
	opt := s.opt.Load()
	if opt.Policy != PolicyAdaptive {
		return
	}
	if !s.planning.CompareAndSwap(false, true) {
		return
	}
	defer s.planning.Store(false)
	s.replans.Add(1)

	res := planAdaptive(planInput{
		stats:    s.stats.snapshot(),
		leafMask: s.leaf.Mask,
		leafRows: s.leaf.Rows(),
		cards:    s.cards,
		budget:   s.Budget(),
		seed:     opt.Seed,
	})
	s.cache.setScores(res.scores)
	planned := make(map[lattice.Mask]bool, len(res.winners))
	for _, w := range res.winners {
		planned[w] = true
	}
	s.planned.Store(&planned)

	var missing []fillReq
	for _, w := range res.winners {
		if !s.cache.peek(w) {
			missing = append(missing, fillReq{mask: w, score: res.scores[w]})
		}
	}
	if len(missing) == 0 {
		return
	}
	if bg := s.bg.Load(); bg != nil {
		bg.submitFills(s, missing)
		return
	}
	for _, f := range missing {
		s.fill(f.mask, f.score)
	}
}

// Resident returns the cached (non-leaf) cuboids in recency order, most
// recently used first. The cuboids are immutable; the commit path folds
// each one forward into the next snapshot's server.
func (s *Server) Resident() []*Cuboid { return s.cache.resident() }

// Warm pre-admits cuboids into the cache. cubs is in recency order, most
// recently used first (the order Resident returns); admission runs in
// reverse so the resulting LRU order matches. The snapshot-commit path
// seeds a new version's server with the previous version's folded
// residents so that commit does not cool the cache; admissions respect
// the byte budget like any other. Under the adaptive policy the carried
// residents are pinned above any admission score until the first re-plan
// rescores them (the commit handoff schedules that re-plan).
func (s *Server) Warm(cubs []*Cuboid) {
	for i := len(cubs) - 1; i >= 0; i-- {
		cub := cubs[i]
		if cub.Mask == s.leaf.Mask {
			continue
		}
		s.cache.add(cub.Mask, cub, s.cache.generation(), infScore)
	}
}

// Precompute computes the cuboids of the given masks and admits them in
// benefit order — cells saved per query (leaf rows minus cuboid rows)
// normalized by footprint, descending, ties broken by ascending mask —
// until the byte budget is spent, and reports the masks whose cuboids
// were computed but not retained. Admission is therefore deterministic in
// the mask *set*, not the caller's order. Crash recovery uses it to
// rebuild the warm set recorded in the last commit marker. The
// computations record into the stats table as background fills, not
// demand; duplicate masks and the leaf are ignored.
func (s *Server) Precompute(masks []lattice.Mask) (admitted int, skipped []lattice.Mask) {
	type pre struct {
		mask    lattice.Mask
		cub     *Cuboid
		gen     uint64
		scanned int
		score   float64
	}
	seen := make(map[lattice.Mask]bool, len(masks))
	var todo []pre
	for _, q := range masks {
		if q == s.leaf.Mask || seen[q] || !q.SubsetOf(s.leaf.Mask) {
			continue
		}
		seen[q] = true
		if s.cache.peek(q) {
			admitted++
			continue
		}
		cub, _, scanned, gen := s.derive(q)
		s.bgFills.Add(1)
		s.stats.recordFill(q, cub.Rows(), cub.SizeBytes(), scanned)
		todo = append(todo, pre{
			mask:    q,
			cub:     cub,
			gen:     gen,
			scanned: scanned,
			score:   admissionScore(1, s.leaf.Rows(), cub.Rows(), cub.SizeBytes()),
		})
	}
	sort.Slice(todo, func(a, b int) bool {
		if todo[a].score != todo[b].score {
			return todo[a].score > todo[b].score
		}
		return todo[a].mask < todo[b].mask
	})
	for _, p := range todo {
		ok, _ := s.cache.add(p.mask, p.cub, p.gen, p.score)
		if ok {
			admitted++
			s.bgAdmitted.Add(1)
		} else {
			skipped = append(skipped, p.mask)
		}
	}
	return admitted, skipped
}

// CuboidStats returns the per-cuboid stats table — every group-by shape
// the server has seen or filled, sorted by mask, annotated with current
// residency and the last plan's winner set. The CLI dumps these
// (icecube -stats); the adaptive planner consumes the same snapshot.
func (s *Server) CuboidStats() []CuboidStats {
	rows := s.stats.snapshot()
	resident := s.cache.residentSet()
	var planned map[lattice.Mask]bool
	if p := s.planned.Load(); p != nil {
		planned = *p
	}
	for i := range rows {
		rows[i].Resident = resident[rows[i].Mask]
		rows[i].Planned = planned[rows[i].Mask]
	}
	return rows
}

// Budget returns the configured cache byte budget.
func (s *Server) Budget() int64 {
	s.cache.mu.Lock()
	defer s.cache.mu.Unlock()
	return s.cache.budget
}

// Stats returns the cumulative serving metrics.
func (s *Server) Stats() Metrics {
	c := s.cache
	c.mu.Lock()
	m := Metrics{
		Admitted:        c.admitted,
		Rejected:        c.rejected,
		Evictions:       c.evictions,
		EvictedBytes:    c.evictedBytes,
		ResidentBytes:   c.bytes,
		ResidentCuboids: len(c.byMask),
		BudgetBytes:     c.budget,
	}
	c.mu.Unlock()
	m.Queries = s.queries.Load()
	m.CacheHits = s.hits.Load()
	m.Coalesced = s.coalesced.Load()
	m.Canceled = s.canceled.Load()
	m.LeafAggregations = s.leafAggs.Load()
	m.AncestorAggregations = s.ancAggs.Load()
	m.Computes = m.LeafAggregations + m.AncestorAggregations
	m.BackgroundFills = s.bgFills.Load()
	m.BackgroundAdmitted = s.bgAdmitted.Load()
	m.Replans = s.replans.Load()
	m.LeafBytes = s.leaf.SizeBytes()
	m.Policy = s.opt.Load().Policy.String()
	return m
}
