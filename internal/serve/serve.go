// Package serve is the lattice-aware online serving layer over a
// materialized finest cuboid (§5.1). Instead of rescanning every leaf
// cell per query — O(leaf) work however coarse the group-by — it keeps a
// registry of resident cuboids keyed by lattice.Mask and answers each
// query from the smallest resident ancestor (Gray et al.'s cube-lattice
// observation: any cuboid is derivable from any superset cuboid by
// further aggregation). Computed cuboids are admitted into a
// byte-budgeted LRU cache, so repeated and nearby query shapes amortize
// to near-lookup cost; the leaf itself is pinned outside the cache and
// never evicted. Concurrent identical misses are coalesced so each
// cuboid is computed once (singleflight).
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"icebergcube/internal/lattice"
	"icebergcube/internal/relation"
)

// DefaultBudgetBytes is the cache budget used when the caller passes a
// non-positive budget: large enough to hold the hot cuboids of any of the
// paper's workloads, small enough to stay irrelevant next to the leaf.
const DefaultBudgetBytes = 64 << 20

// QueryStats describes how one query was served — threaded back to the
// caller for observability and asserted on by the serving experiments.
type QueryStats struct {
	// Query is the requested group-by.
	Query lattice.Mask
	// ServedFrom is the resident cuboid the answer came from: Query
	// itself on a cache hit, else the smallest resident ancestor that was
	// aggregated.
	ServedFrom lattice.Mask
	// CacheHit reports the answer was already resident (no aggregation).
	CacheHit bool
	// Coalesced reports this query waited on an identical in-flight miss
	// instead of computing its own copy.
	Coalesced bool
	// CellsScanned is the number of ancestor cells aggregated (0 on a
	// hit).
	CellsScanned int
	// ResultCells is the answer cuboid's cell count.
	ResultCells int
	// Admitted reports the computed cuboid was retained in the cache.
	Admitted bool
	// Evicted is the number of cuboids evicted to admit this one.
	Evicted int
}

// Metrics are the server's cumulative counters.
type Metrics struct {
	// Queries is the total number of Query calls.
	Queries int64
	// CacheHits counts queries answered from a resident cuboid (leaf
	// included) without aggregation.
	CacheHits int64
	// Coalesced counts queries that piggybacked on an identical
	// in-flight miss.
	Coalesced int64
	// Computes counts aggregations performed (cache misses that did
	// work).
	Computes int64
	// LeafAggregations / AncestorAggregations split Computes by source:
	// the pinned leaf vs a smaller cached ancestor.
	LeafAggregations     int64
	AncestorAggregations int64
	// Admitted / Rejected / Evictions are cache admission-control
	// counters; EvictedBytes totals the evicted cuboids' footprint.
	Admitted     int64
	Rejected     int64
	Evictions    int64
	EvictedBytes int64
	// ResidentBytes / ResidentCuboids describe the cache's current
	// occupancy (the pinned leaf is excluded). ResidentBytes ≤
	// BudgetBytes always.
	ResidentBytes   int64
	ResidentCuboids int
	// BudgetBytes is the configured cache budget.
	BudgetBytes int64
	// LeafBytes is the pinned leaf's footprint (not budgeted).
	LeafBytes int64
}

// Server answers group-by queries over one materialized leaf cuboid.
// Safe for concurrent use.
type Server struct {
	leaf  *Cuboid
	cards []int // per leaf column: code cardinality, for radix sizing
	cache *cache

	mu       sync.Mutex
	inflight map[lattice.Mask]*flight

	scratch sync.Pool // *relation.Scratch, one per aggregating goroutine

	// testBeforeAdmit, when set, runs between a miss's aggregation and
	// its cache admission — the window the generation guard protects.
	// Tests use it to interleave Reset/Invalidate/SetBudget
	// deterministically with an in-flight computation.
	testBeforeAdmit func()

	queries   atomic.Int64
	hits      atomic.Int64
	coalesced atomic.Int64
	leafAggs  atomic.Int64
	ancAggs   atomic.Int64
}

// flight is one in-progress cuboid computation; duplicate queriers wait
// on done and share the result.
type flight struct {
	done  chan struct{}
	cub   *Cuboid
	stats QueryStats
}

// NewServer builds a server over a leaf cuboid. cards gives the code
// cardinality of each leaf column (used to size radix passes);
// budgetBytes ≤ 0 selects DefaultBudgetBytes.
func NewServer(leaf *Cuboid, cards []int, budgetBytes int64) *Server {
	if budgetBytes <= 0 {
		budgetBytes = DefaultBudgetBytes
	}
	s := &Server{
		leaf:     leaf,
		cards:    append([]int(nil), cards...),
		cache:    newCache(budgetBytes),
		inflight: make(map[lattice.Mask]*flight),
	}
	s.scratch.New = func() any { return relation.NewScratch() }
	return s
}

// Leaf returns the pinned leaf cuboid.
func (s *Server) Leaf() *Cuboid { return s.leaf }

// SetBudget changes the cache byte budget, evicting as needed.
func (s *Server) SetBudget(budgetBytes int64) {
	if budgetBytes <= 0 {
		budgetBytes = DefaultBudgetBytes
	}
	s.cache.setBudget(budgetBytes)
}

// Reset drops every cached cuboid (the leaf stays). Benchmarks use it to
// measure the cold path.
func (s *Server) Reset() { s.cache.reset() }

// Invalidate drops one cached cuboid if resident.
func (s *Server) Invalidate(q lattice.Mask) { s.cache.remove(q) }

// Query returns the cuboid for group-by q (bit i = leaf column i) along
// with how it was served. The returned cuboid is immutable and remains
// valid after eviction.
func (s *Server) Query(q lattice.Mask) (*Cuboid, QueryStats, error) {
	if !q.SubsetOf(s.leaf.Mask) {
		return nil, QueryStats{}, fmt.Errorf("serve: mask %b is not a subset of the leaf %b", q, s.leaf.Mask)
	}
	s.queries.Add(1)
	stats := QueryStats{Query: q, ServedFrom: q}
	if q == s.leaf.Mask {
		s.hits.Add(1)
		stats.CacheHit = true
		stats.ResultCells = s.leaf.Rows()
		return s.leaf, stats, nil
	}
	if cub, ok := s.cache.get(q); ok {
		s.hits.Add(1)
		stats.CacheHit = true
		stats.ResultCells = cub.Rows()
		return cub, stats, nil
	}

	// Miss: coalesce with an identical in-flight computation, else
	// become the filler for this mask.
	s.mu.Lock()
	if f, ok := s.inflight[q]; ok {
		s.mu.Unlock()
		<-f.done
		s.coalesced.Add(1)
		stats = f.stats
		stats.Coalesced = true
		return f.cub, stats, nil
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[q] = f
	s.mu.Unlock()

	cub, st := s.compute(q)
	f.cub, f.stats = cub, st
	s.mu.Lock()
	delete(s.inflight, q)
	s.mu.Unlock()
	close(f.done)
	return cub, st, nil
}

// compute aggregates q from the smallest resident ancestor and admits the
// result into the cache.
func (s *Server) compute(q lattice.Mask) (*Cuboid, QueryStats) {
	stats := QueryStats{Query: q}

	// Capture the cache generation before reading any resident state: if
	// a Reset or Invalidate lands while we aggregate, the admission below
	// is rejected instead of resurrecting a cuboid the invalidation was
	// meant to drop. The served answer itself stays valid — it was
	// aggregated from the immutable leaf or an immutable ancestor copy.
	gen := s.cache.generation()

	// Candidate ancestors: every cached cuboid plus the pinned leaf.
	resident := s.cache.residentMasks(make([]maskSize, 0, 16))
	resident = append(resident, maskSize{mask: s.leaf.Mask, rows: s.leaf.Rows()})
	rows := make(map[lattice.Mask]int, len(resident))
	masks := make([]lattice.Mask, 0, len(resident))
	for _, ms := range resident {
		if _, ok := rows[ms.mask]; !ok {
			rows[ms.mask] = ms.rows
			masks = append(masks, ms.mask)
		}
	}
	from, _ := lattice.SmallestAncestor(q, masks, func(m lattice.Mask) int { return rows[m] })

	src := s.leaf
	if from != s.leaf.Mask {
		if cub, ok := s.cache.get(from); ok {
			src = cub
		} else {
			// Evicted between selection and fetch; fall back to the leaf.
			from = s.leaf.Mask
		}
	}
	if from == s.leaf.Mask {
		s.leafAggs.Add(1)
	} else {
		s.ancAggs.Add(1)
	}

	// Column positions of q's attributes within src's rows, and their
	// cardinalities for the radix sort.
	srcDims := src.Mask.Dims()
	srcPos := make(map[int]int, len(srcDims))
	for i, d := range srcDims {
		srcPos[d] = i
	}
	qDims := q.Dims()
	cols := make([]int, len(qDims))
	cards := make([]int, len(qDims))
	for i, d := range qDims {
		cols[i] = srcPos[d]
		cards[i] = s.cards[d]
	}

	sc := s.scratch.Get().(*relation.Scratch)
	cub := aggregateFrom(src, q, cols, cards, sc)
	s.scratch.Put(sc)

	if s.testBeforeAdmit != nil {
		s.testBeforeAdmit()
	}

	stats.ServedFrom = from
	stats.CellsScanned = src.Rows()
	stats.ResultCells = cub.Rows()
	stats.Admitted, stats.Evicted = s.cache.add(q, cub, gen)
	return cub, stats
}

// Resident returns the cached (non-leaf) cuboids in recency order, most
// recently used first. The cuboids are immutable; the commit path folds
// each one forward into the next snapshot's server.
func (s *Server) Resident() []*Cuboid { return s.cache.resident() }

// Warm pre-admits cuboids into the cache. cubs is in recency order, most
// recently used first (the order Resident returns); admission runs in
// reverse so the resulting LRU order matches. The snapshot-commit path
// seeds a new version's server with the previous version's folded
// residents so that commit does not cool the cache; admissions respect
// the byte budget like any other.
func (s *Server) Warm(cubs []*Cuboid) {
	for i := len(cubs) - 1; i >= 0; i-- {
		cub := cubs[i]
		if cub.Mask == s.leaf.Mask {
			continue
		}
		s.cache.add(cub.Mask, cub, s.cache.generation())
	}
}

// Precompute computes and admits the cuboids of the given masks (least
// important last, like Warm's input order) by running them through the
// ordinary query path, and returns how many ended up resident. Crash
// recovery uses it to rebuild the warm set recorded in the last commit
// marker: unlike Warm it derives each cuboid from the current leaf, so
// it needs only the masks. Queries issued here count toward Stats like
// any client query; admission respects the byte budget, so a mask whose
// cuboid no longer fits is simply skipped.
func (s *Server) Precompute(masks []lattice.Mask) int {
	n := 0
	for i := len(masks) - 1; i >= 0; i-- {
		q := masks[i]
		if q == s.leaf.Mask {
			continue
		}
		if _, st, err := s.Query(q); err == nil && (st.Admitted || st.CacheHit) {
			n++
		}
	}
	return n
}

// Budget returns the configured cache byte budget.
func (s *Server) Budget() int64 {
	s.cache.mu.Lock()
	defer s.cache.mu.Unlock()
	return s.cache.budget
}

// Stats returns the cumulative serving metrics.
func (s *Server) Stats() Metrics {
	c := s.cache
	c.mu.Lock()
	m := Metrics{
		Admitted:        c.admitted,
		Rejected:        c.rejected,
		Evictions:       c.evictions,
		EvictedBytes:    c.evictedBytes,
		ResidentBytes:   c.bytes,
		ResidentCuboids: len(c.byMask),
		BudgetBytes:     c.budget,
	}
	c.mu.Unlock()
	m.Queries = s.queries.Load()
	m.CacheHits = s.hits.Load()
	m.Coalesced = s.coalesced.Load()
	m.LeafAggregations = s.leafAggs.Load()
	m.AncestorAggregations = s.ancAggs.Load()
	m.Computes = m.LeafAggregations + m.AncestorAggregations
	m.LeafBytes = s.leaf.SizeBytes()
	return m
}
