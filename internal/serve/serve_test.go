package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"icebergcube/internal/agg"
	"icebergcube/internal/lattice"
	"icebergcube/internal/results"
)

// buildLeaf makes a random leaf cuboid over dims with the given
// cardinalities: every distinct tuple once, with a deterministic state.
func buildLeaf(cards []int, tuples int, seed int64) (*Cuboid, []int) {
	rng := rand.New(rand.NewSource(seed))
	set := results.NewSet()
	var mask lattice.Mask
	for p := range cards {
		mask |= 1 << uint(p)
	}
	key := make([]uint32, len(cards))
	for t := 0; t < tuples; t++ {
		for d, card := range cards {
			key[d] = uint32(rng.Intn(card))
		}
		st := agg.NewState()
		st.Add(float64(rng.Intn(100)))
		set.WriteCell(mask, key, st)
	}
	keys, states := set.CuboidColumns(mask)
	return &Cuboid{Mask: mask, Width: len(cards), Keys: keys, States: states}, cards
}

// refAggregate is the trivial map-based reference the kernel is checked
// against.
func refAggregate(leaf *Cuboid, q lattice.Mask) map[string]agg.State {
	dims := q.Dims()
	out := make(map[string]agg.State)
	for i := 0; i < leaf.Rows(); i++ {
		row := leaf.Row(i)
		k := ""
		for _, d := range dims {
			k += fmt.Sprintf("%d|", row[d])
		}
		st, ok := out[k]
		if !ok {
			st = agg.NewState()
		}
		st.Merge(leaf.States[i])
		out[k] = st
	}
	return out
}

func checkCuboid(t *testing.T, leaf *Cuboid, q lattice.Mask, cub *Cuboid) {
	t.Helper()
	want := refAggregate(leaf, q)
	if cub.Rows() != len(want) {
		t.Fatalf("mask %b: %d cells, want %d", q, cub.Rows(), len(want))
	}
	prev := []uint32(nil)
	for i := 0; i < cub.Rows(); i++ {
		row := cub.Row(i)
		if prev != nil && results.CompareTuples(prev, row) >= 0 {
			t.Fatalf("mask %b: rows out of order at %d", q, i)
		}
		prev = append(prev[:0], row...)
		k := ""
		for _, v := range row {
			k += fmt.Sprintf("%d|", v)
		}
		w, ok := want[k]
		if !ok {
			t.Fatalf("mask %b: unexpected cell %v", q, row)
		}
		got := cub.States[i]
		if got.Count != w.Count || got.Sum != w.Sum || got.Min != w.Min || got.Max != w.Max {
			t.Fatalf("mask %b cell %v: state %+v want %+v", q, row, got, w)
		}
	}
}

// TestQueryMatchesReference: every group-by served (from leaf or cached
// ancestor, in random query order) equals the map-based reference.
func TestQueryMatchesReference(t *testing.T) {
	cards := []int{5, 300, 4, 70}
	leaf, _ := buildLeaf(cards, 4000, 1)
	srv := NewServer(leaf, cards, 1<<20)
	rng := rand.New(rand.NewSource(2))
	masks := lattice.All(len(cards))
	masks = append(masks, 0, 0) // include the "all" cuboid
	for i := 0; i < 200; i++ {
		q := masks[rng.Intn(len(masks))]
		cub, stats, err := srv.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Query != q {
			t.Fatalf("stats echo wrong mask: %b != %b", stats.Query, q)
		}
		if !stats.CacheHit && !q.SubsetOf(stats.ServedFrom) {
			t.Fatalf("served %b from non-ancestor %b", q, stats.ServedFrom)
		}
		checkCuboid(t, leaf, q, cub)
	}
	m := srv.Stats()
	if m.Queries != 200 || m.CacheHits == 0 || m.Computes == 0 {
		t.Fatalf("implausible metrics: %+v", m)
	}
}

// TestAncestorRewriting: once ABC is resident, AB must be aggregated from
// it (not the leaf), and the scan size must shrink accordingly.
func TestAncestorRewriting(t *testing.T) {
	cards := []int{4, 5, 6, 200}
	leaf, _ := buildLeaf(cards, 5000, 3)
	srv := NewServer(leaf, cards, 1<<20)
	abc := lattice.MaskOf(0, 1, 2)
	cubABC, stats, err := srv.Query(abc)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ServedFrom != leaf.Mask || stats.CellsScanned != leaf.Rows() {
		t.Fatalf("cold ABC should rescan the leaf: %+v", stats)
	}
	ab := lattice.MaskOf(0, 1)
	_, stats, err = srv.Query(ab)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ServedFrom != abc {
		t.Fatalf("AB served from %b, want the cached ABC %b", stats.ServedFrom, abc)
	}
	if stats.CellsScanned != cubABC.Rows() {
		t.Fatalf("AB scanned %d cells, want ABC's %d", stats.CellsScanned, cubABC.Rows())
	}
	if stats.CellsScanned >= leaf.Rows() {
		t.Fatalf("ancestor rewrite saved nothing: %d vs leaf %d", stats.CellsScanned, leaf.Rows())
	}
	// Third query of AB is a pure hit.
	_, stats, err = srv.Query(ab)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CacheHit || stats.CellsScanned != 0 {
		t.Fatalf("repeat AB should hit: %+v", stats)
	}
}

// TestSmallestAncestorWins: with two resident ancestors the smaller one
// is chosen.
func TestSmallestAncestorWins(t *testing.T) {
	cards := []int{3, 4, 500, 600}
	leaf, _ := buildLeaf(cards, 6000, 5)
	srv := NewServer(leaf, cards, 8<<20)
	big := lattice.MaskOf(0, 1, 2)   // ~thousands of cells
	small := lattice.MaskOf(0, 1, 3) // also superset of {0,1}
	cubBig, _, _ := srv.Query(big)
	cubSmall, _, _ := srv.Query(small)
	want := big
	if cubSmall.Rows() < cubBig.Rows() {
		want = small
	}
	_, stats, err := srv.Query(lattice.MaskOf(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.ServedFrom != want {
		t.Fatalf("served from %b, want the smaller ancestor %b (big=%d small=%d cells)",
			stats.ServedFrom, want, cubBig.Rows(), cubSmall.Rows())
	}
}

// TestBudgetRespectedUnderPressure: resident bytes never exceed the
// budget, evictions happen, and evicted cuboids are recomputed correctly.
func TestBudgetRespectedUnderPressure(t *testing.T) {
	cards := []int{6, 7, 8, 9}
	leaf, _ := buildLeaf(cards, 3000, 7)
	budget := int64(4 << 10) // a few cuboids at most
	srv := NewServer(leaf, cards, budget)
	rng := rand.New(rand.NewSource(11))
	masks := lattice.All(len(cards))
	for i := 0; i < 300; i++ {
		q := masks[rng.Intn(len(masks))]
		cub, _, err := srv.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		checkCuboid(t, leaf, q, cub)
		if m := srv.Stats(); m.ResidentBytes > m.BudgetBytes {
			t.Fatalf("budget violated: %d > %d", m.ResidentBytes, m.BudgetBytes)
		}
	}
	m := srv.Stats()
	if m.Evictions == 0 {
		t.Fatalf("no evictions under a %dB budget: %+v", budget, m)
	}
}

// TestLRUEvictionOrder: with a budget for ~one cuboid, the least recently
// used entry goes first.
func TestLRUEvictionOrder(t *testing.T) {
	cards := []int{4, 4, 4}
	leaf, _ := buildLeaf(cards, 500, 13)
	a, b := lattice.MaskOf(0), lattice.MaskOf(1)
	srv := NewServer(leaf, cards, 0)
	cubA, _, _ := srv.Query(a)
	cubB, _, _ := srv.Query(b)
	srv.SetBudget(cubA.SizeBytes() + cubB.SizeBytes() + cuboidOverheadBytes/2)
	srv.Reset()
	srv.Query(a)                 // A resident
	srv.Query(b)                 // B resident
	srv.Query(a)                 // A most recent
	srv.Query(lattice.MaskOf(2)) // must evict B, the LRU
	if _, stats, _ := srv.Query(a); !stats.CacheHit {
		t.Fatal("recently used A was evicted")
	}
	if _, stats, _ := srv.Query(b); stats.CacheHit {
		t.Fatal("LRU B survived eviction")
	}
}

// TestOversizedCuboidNotAdmitted: a cuboid bigger than the whole budget
// is served but not retained; the resident set stays within budget.
func TestOversizedCuboidNotAdmitted(t *testing.T) {
	cards := []int{50, 60, 3}
	leaf, _ := buildLeaf(cards, 4000, 17)
	srv := NewServer(leaf, cards, 512)
	q := lattice.MaskOf(0, 1)
	cub, stats, err := srv.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if cub.SizeBytes() <= 512 {
		t.Skip("workload produced a tiny cuboid; nothing to reject")
	}
	if stats.Admitted {
		t.Fatal("oversized cuboid admitted")
	}
	if m := srv.Stats(); m.Rejected == 0 || m.ResidentBytes > m.BudgetBytes {
		t.Fatalf("rejection not accounted: %+v", m)
	}
	checkCuboid(t, leaf, q, cub)
}

// TestSingleflightCoalesces: many concurrent identical cold misses
// compute the cuboid exactly once.
func TestSingleflightCoalesces(t *testing.T) {
	cards := []int{5, 6, 7, 8}
	leaf, _ := buildLeaf(cards, 8000, 19)
	srv := NewServer(leaf, cards, 1<<20)
	q := lattice.MaskOf(0, 2)
	const G = 32
	var wg sync.WaitGroup
	cubs := make([]*Cuboid, G)
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cub, _, err := srv.Query(q)
			if err != nil {
				t.Error(err)
			}
			cubs[g] = cub
		}(g)
	}
	wg.Wait()
	m := srv.Stats()
	if m.Computes != 1 {
		t.Fatalf("%d computes for %d identical concurrent misses, want 1", m.Computes, G)
	}
	if m.CacheHits+m.Coalesced != G-1 {
		t.Fatalf("hits %d + coalesced %d != %d", m.CacheHits, m.Coalesced, G-1)
	}
	for g := 1; g < G; g++ {
		if cubs[g] != cubs[0] {
			t.Fatal("coalesced queries returned different cuboids")
		}
	}
	checkCuboid(t, leaf, q, cubs[0])
}

// TestConcurrentMixedQueries: random concurrent traffic under a tight
// budget stays correct (run under -race in CI).
func TestConcurrentMixedQueries(t *testing.T) {
	cards := []int{5, 6, 7, 8}
	leaf, _ := buildLeaf(cards, 4000, 23)
	srv := NewServer(leaf, cards, 8<<10)
	masks := lattice.All(len(cards))
	const G = 8
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 100; i++ {
				q := masks[rng.Intn(len(masks))]
				cub, _, err := srv.Query(q)
				if err != nil {
					t.Error(err)
					return
				}
				want := refAggregate(leaf, q)
				if cub.Rows() != len(want) {
					t.Errorf("mask %b: %d cells, want %d", q, cub.Rows(), len(want))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if m := srv.Stats(); m.ResidentBytes > m.BudgetBytes {
		t.Fatalf("budget violated: %+v", m)
	}
}

// TestQueryOutsideLeafErrors: masks beyond the leaf are rejected.
func TestQueryOutsideLeafErrors(t *testing.T) {
	cards := []int{3, 3}
	leaf, _ := buildLeaf(cards, 100, 29)
	srv := NewServer(leaf, cards, 0)
	if _, _, err := srv.Query(lattice.MaskOf(5)); err == nil {
		t.Fatal("out-of-leaf mask accepted")
	}
}

// TestAllCuboid: the empty mask rolls everything into one cell whose
// count equals the leaf's total.
func TestAllCuboid(t *testing.T) {
	cards := []int{4, 5}
	leaf, _ := buildLeaf(cards, 700, 31)
	srv := NewServer(leaf, cards, 0)
	cub, _, err := srv.Query(0)
	if err != nil {
		t.Fatal(err)
	}
	if cub.Rows() != 1 || cub.Width != 0 {
		t.Fatalf("ALL cuboid has %d rows width %d", cub.Rows(), cub.Width)
	}
	var total int64
	for _, st := range leaf.States {
		total += st.Count
	}
	if cub.States[0].Count != total {
		t.Fatalf("ALL count %d != leaf total %d", cub.States[0].Count, total)
	}
}
