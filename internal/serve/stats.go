package serve

import (
	"sort"
	"sync"

	"icebergcube/internal/lattice"
)

// CuboidStats is one group-by shape's observed traffic and measured cost —
// one row of the server's per-cuboid stats table. The adaptive admission
// planner consumes a snapshot of these; Server.CuboidStats exposes them
// for CLI inspection (icecube -stats).
type CuboidStats struct {
	// Mask identifies the cuboid.
	Mask lattice.Mask
	// Hits counts foreground queries answered while the cuboid was
	// resident (coalesced queries included — they are demand evidence).
	Hits int64
	// Misses counts foreground queries that had to aggregate the cuboid.
	Misses int64
	// BackgroundFills counts times the background materializer computed
	// this cuboid on the planner's behalf.
	BackgroundFills int64
	// Rows and Bytes are the cuboid's measured cell count and footprint,
	// zero until it has been computed at least once.
	Rows  int
	Bytes int64
	// DeriveCells is the ancestor cell count scanned the last time the
	// cuboid was derived — the measured re-derive cost the planner weighs
	// against Bytes.
	DeriveCells int
	// Resident and Planned report the cuboid's current cache residency and
	// whether the last re-plan selected it as a benefit-per-byte winner.
	Resident bool
	Planned  bool
}

// Queries is the total observed demand (hits + misses).
func (s CuboidStats) Queries() int64 { return s.Hits + s.Misses }

// cubStat is the mutable table entry behind CuboidStats.
type cubStat struct {
	hits, misses int64
	bgFills      int64
	rows         int
	bytes        int64
	deriveCells  int
}

// statsTable accumulates per-cuboid traffic and measured costs. It is the
// workload model the adaptive policy plans from; the commit path clones it
// into the next version's server so the plan survives snapshots.
type statsTable struct {
	mu     sync.Mutex
	byMask map[lattice.Mask]*cubStat
}

func newStatsTable() *statsTable {
	return &statsTable{byMask: make(map[lattice.Mask]*cubStat)}
}

func (t *statsTable) entry(m lattice.Mask) *cubStat {
	e, ok := t.byMask[m]
	if !ok {
		e = &cubStat{}
		t.byMask[m] = e
	}
	return e
}

// recordHit notes a foreground query served from a resident copy.
func (t *statsTable) recordHit(m lattice.Mask, rows int, bytes int64) {
	t.mu.Lock()
	e := t.entry(m)
	e.hits++
	e.rows, e.bytes = rows, bytes
	t.mu.Unlock()
}

// recordMiss notes a foreground query that derived the cuboid, with the
// measured derive cost (ancestor cells scanned).
func (t *statsTable) recordMiss(m lattice.Mask, rows int, bytes int64, scanned int) {
	t.mu.Lock()
	e := t.entry(m)
	e.misses++
	e.rows, e.bytes = rows, bytes
	e.deriveCells = scanned
	t.mu.Unlock()
}

// recordFill notes a background materialization (not demand — fills must
// not inflate the popularity the planner reads, or winners would
// self-reinforce).
func (t *statsTable) recordFill(m lattice.Mask, rows int, bytes int64, scanned int) {
	t.mu.Lock()
	e := t.entry(m)
	e.bgFills++
	e.rows, e.bytes = rows, bytes
	e.deriveCells = scanned
	t.mu.Unlock()
}

// demand returns a shape's observed foreground demand (hits + misses).
func (t *statsTable) demand(m lattice.Mask) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.byMask[m]; ok {
		return e.hits + e.misses
	}
	return 0
}

// snapshot returns the table's rows sorted by mask — the deterministic
// planner input.
func (t *statsTable) snapshot() []CuboidStats {
	t.mu.Lock()
	out := make([]CuboidStats, 0, len(t.byMask))
	for m, e := range t.byMask {
		out = append(out, CuboidStats{
			Mask:            m,
			Hits:            e.hits,
			Misses:          e.misses,
			BackgroundFills: e.bgFills,
			Rows:            e.rows,
			Bytes:           e.bytes,
			DeriveCells:     e.deriveCells,
		})
	}
	t.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Mask < out[b].Mask })
	return out
}

// adopt merges a predecessor server's snapshot into this table (the
// commit handoff: traffic observed on version v seeds version v+1's
// plan). Counters add; measured sizes from the predecessor win only when
// this table has none yet.
func (t *statsTable) adopt(rows []CuboidStats) {
	t.mu.Lock()
	for _, r := range rows {
		e := t.entry(r.Mask)
		e.hits += r.Hits
		e.misses += r.Misses
		e.bgFills += r.BackgroundFills
		if e.rows == 0 && e.bytes == 0 {
			e.rows, e.bytes, e.deriveCells = r.Rows, r.Bytes, r.DeriveCells
		}
	}
	t.mu.Unlock()
}
