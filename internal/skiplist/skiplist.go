// Package skiplist implements W. Pugh's probabilistic skip list (§3.3.1,
// Fig 3.7) specialized for cube cells: keys are composite dimension-value
// tuples and payloads are aggregate states. It is the cell store of
// algorithm ASL and of the online aggregation algorithm POL.
//
// The properties the algorithms rely on are: ordered iteration (cells come
// out sorted, so cuboids are written in sort order and prefix
// re-aggregation is a linear scan), incremental insertion (the data set
// need not be loaded before "sorting" starts), and cheap ordered merge of
// two lists over disjoint key ranges (POL's skip-list partitions).
//
// Key comparisons are charged element-by-element to a CompareCounter so the
// cost of long composite keys at high dimensionality (Fig 4.4) is measured
// rather than assumed.
package skiplist

import (
	"math/rand"

	"icebergcube/internal/agg"
	"icebergcube/internal/relation"
)

// MaxLevel caps node height; the paper's implementation allows at most 16
// forward links per node.
const MaxLevel = 16

// p is the level-promotion probability (Pugh's classic 1/4 keeps pointer
// overhead below two links per node on average).
const p = 0.25

type node struct {
	key   []uint32
	state agg.State
	next  []*node
}

// List is a skip list from composite keys to aggregate states.
//
// Nodes, their forward-pointer slices, and their key copies are carved out
// of per-list arena blocks rather than allocated individually: ASL/POL
// lists hold thousands of short-lived cells, and three heap objects per
// cell dominated the allocation profile. Blocks are append-only (the list
// never deletes), so carved addresses stay stable and exhausted blocks
// stay reachable through the list structure itself.
type List struct {
	head   *node
	level  int
	length int
	rng    *rand.Rand
	ctr    relation.CompareCounter
	// pend accumulates key-element comparison counts between flushes: one
	// dynamic AddCompares dispatch per public operation instead of one per
	// key comparison, which dominated the POL profile. Totals charged are
	// unchanged.
	pend int64

	nodeBlock []node   // unused tail of the current node block
	nextArena []*node  // current forward-pointer block (len = used)
	keyArena  []uint32 // current key-element block (len = used)
	size      int64    // running SizeBytes total, maintained by newNode
}

// New returns an empty list. seed makes node heights deterministic; ctr
// (may be nil) receives key-element comparison counts.
func New(seed int64, ctr relation.CompareCounter) *List {
	if ctr == nil {
		ctr = relation.NopCounter()
	}
	return &List{
		head:  &node{next: make([]*node, MaxLevel)},
		level: 1,
		rng:   rand.New(rand.NewSource(seed)),
		ctr:   ctr,
	}
}

// Len returns the number of cells in the list.
func (l *List) Len() int { return l.length }

// compare lexicographically compares keys, charging the elements inspected
// to the pending-comparison accumulator.
func (l *List) compare(a, b []uint32) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			l.pend += int64(i + 1)
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	l.pend += int64(n)
	if len(a) == len(b) {
		return 0
	}
	if len(a) < len(b) {
		return -1
	}
	return 1
}

// flush charges the accumulated comparison count; every public operation
// that compares keys ends with one.
func (l *List) flush() {
	if l.pend != 0 {
		l.ctr.AddCompares(l.pend)
		l.pend = 0
	}
}

// nodeBlockSize trades arena overhead against allocation rate; at Pugh's
// p=0.25 a block of 512 nodes needs ~683 forward pointers on average.
const (
	nodeBlockSize = 512
	nextBlockSize = 1024
	keyBlockSize  = 4096
)

// newNode carves a node, its key copy, and its lvl forward pointers from
// the list's arenas, starting fresh blocks as they fill. Full-slice
// expressions keep one cell's slices from ever growing into a neighbour's
// region.
func (l *List) newNode(key []uint32, lvl int) *node {
	if len(l.nodeBlock) == 0 {
		l.nodeBlock = make([]node, nodeBlockSize)
	}
	n := &l.nodeBlock[0]
	l.nodeBlock = l.nodeBlock[1:]

	if cap(l.keyArena)-len(l.keyArena) < len(key) {
		size := keyBlockSize
		if len(key) > size {
			size = len(key)
		}
		l.keyArena = make([]uint32, 0, size)
	}
	off := len(l.keyArena)
	l.keyArena = append(l.keyArena, key...)
	n.key = l.keyArena[off : off+len(key) : off+len(key)]

	if cap(l.nextArena)-len(l.nextArena) < lvl {
		l.nextArena = make([]*node, 0, nextBlockSize)
	}
	noff := len(l.nextArena)
	l.nextArena = l.nextArena[:noff+lvl]
	n.next = l.nextArena[noff : noff+lvl : noff+lvl]

	n.state = agg.NewState()
	l.size += int64(4*len(key)) + 32 + int64(8*lvl)
	return n
}

func (l *List) randomLevel() int {
	lvl := 1
	for lvl < MaxLevel && l.rng.Float64() < p {
		lvl++
	}
	return lvl
}

// findUpdate locates the rightmost node before key at every level. The
// search loop decides on the first key element alone whenever it can —
// cube keys lead with the sort dimension, so most probes resolve there —
// and only falls back to the full lexicographic compare on a first-element
// tie. Charged comparison counts are identical to compare's: one element
// for a first-element decision, the tie path recounts from element zero.
func (l *List) findUpdate(key []uint32, update []*node) *node {
	x := l.head
	if len(key) == 0 {
		for i := l.level - 1; i >= 0; i-- {
			for x.next[i] != nil && l.compare(x.next[i].key, key) < 0 {
				x = x.next[i]
			}
			update[i] = x
		}
		return x.next[0]
	}
	k0 := key[0]
	for i := l.level - 1; i >= 0; i-- {
		for {
			nx := x.next[i]
			if nx == nil {
				break
			}
			a := nx.key
			if len(a) == 0 { // shorter key sorts first; nothing compared
				x = nx
				continue
			}
			if a[0] != k0 {
				l.pend++
				if a[0] < k0 {
					x = nx
					continue
				}
				break
			}
			if l.compare(a, key) >= 0 {
				break
			}
			x = nx
		}
		update[i] = x
	}
	return x.next[0]
}

// Add folds one measure into the cell with the given key, creating the cell
// if absent. It reports whether a new cell was created. The key is copied
// on insert, so callers may reuse their buffer.
func (l *List) Add(key []uint32, measure float64) bool {
	defer l.flush()
	var update [MaxLevel]*node
	cand := l.findUpdate(key, update[:])
	if cand != nil && l.compare(cand.key, key) == 0 {
		cand.state.Add(measure)
		return false
	}
	l.insert(key, update[:], func(n *node) { n.state.Add(measure) })
	return true
}

// MergeState folds an aggregate state (over tuples disjoint from the cell's
// current contents) into the cell with the given key, creating it if
// absent. Used by subset-create (ASL) and by POL's skip-list merges.
func (l *List) MergeState(key []uint32, st agg.State) bool {
	defer l.flush()
	var update [MaxLevel]*node
	cand := l.findUpdate(key, update[:])
	if cand != nil && l.compare(cand.key, key) == 0 {
		cand.state.Merge(st)
		return false
	}
	l.insert(key, update[:], func(n *node) { n.state = st })
	return true
}

func (l *List) insert(key []uint32, update []*node, init func(*node)) {
	lvl := l.randomLevel()
	if lvl > l.level {
		for i := l.level; i < lvl; i++ {
			update[i] = l.head
		}
		l.level = lvl
	}
	n := l.newNode(key, lvl)
	init(n)
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	l.length++
}

// Get returns the state for key and whether the cell exists.
func (l *List) Get(key []uint32) (agg.State, bool) {
	defer l.flush()
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && l.compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
	}
	c := x.next[0]
	if c != nil && l.compare(c.key, key) == 0 {
		return c.state, true
	}
	return agg.State{}, false
}

// Scan visits every cell in key order. The callback must not retain key
// across calls. Returning false stops the scan.
func (l *List) Scan(fn func(key []uint32, st agg.State) bool) {
	for x := l.head.next[0]; x != nil; x = x.next[0] {
		if !fn(x.key, x.state) {
			return
		}
	}
}

// ScanPrefixGroups aggregates cells by the first k key elements — a linear
// pass, because the list is sorted — and calls fn once per group with the
// merged state. This is ASL's prefix-reuse (subroutine prefix-reuse,
// Fig 3.8): computing cuboid ABC from the skip list of ABCD without
// building a new list.
func (l *List) ScanPrefixGroups(k int, fn func(prefix []uint32, st agg.State)) {
	defer l.flush()
	x := l.head.next[0]
	if x == nil {
		return
	}
	cur := append([]uint32(nil), x.key[:k]...)
	st := agg.NewState()
	st.Merge(x.state)
	for x = x.next[0]; x != nil; x = x.next[0] {
		if !equalPrefix(x.key, cur, k, l) {
			fn(cur, st)
			copy(cur, x.key[:k])
			st = agg.NewState()
		}
		st.Merge(x.state)
	}
	fn(cur, st)
}

func equalPrefix(key, cur []uint32, k int, l *List) bool {
	for i := 0; i < k; i++ {
		if key[i] != cur[i] {
			l.pend += int64(i + 1)
			return false
		}
	}
	l.pend += int64(k)
	return true
}

// Merge folds every cell of other into l (states merge; other is unchanged).
// POL uses it when a stolen task's freshly built list is shipped to the
// owning processor (§5.3.2).
func (l *List) Merge(other *List) {
	other.Scan(func(key []uint32, st agg.State) bool {
		l.MergeState(key, st)
		return true
	})
}

// Builder constructs a list from keys arriving in non-decreasing order —
// O(1) links per cell instead of a top-down search, the payoff of sharing
// a sort order with a previous task (§4.9.2's extended affinity). Appends
// of the current maximum key merge into the tail cell.
type Builder struct {
	list  *List
	tails [MaxLevel]*node
}

// NewBuilder returns a builder over a fresh list.
func NewBuilder(seed int64, ctr relation.CompareCounter) *Builder {
	b := &Builder{list: New(seed, ctr)}
	for i := range b.tails {
		b.tails[i] = b.list.head
	}
	return b
}

// Append adds a cell whose key is ≥ every key appended so far (equal keys
// merge). It panics if keys regress, since that would corrupt the order
// invariant every consumer relies on.
func (b *Builder) Append(key []uint32, st agg.State) {
	l := b.list
	defer l.flush()
	tail := b.tails[0]
	if tail != l.head {
		switch l.compare(tail.key, key) {
		case 0:
			tail.state.Merge(st)
			return
		case 1:
			panic("skiplist: Builder.Append keys must be non-decreasing")
		}
	}
	lvl := l.randomLevel()
	if lvl > l.level {
		l.level = lvl
	}
	n := l.newNode(key, lvl)
	n.state.Merge(st)
	for i := 0; i < lvl; i++ {
		b.tails[i].next[i] = n
		b.tails[i] = n
	}
	l.length++
}

// List returns the built list; the builder must not be used afterwards.
func (b *Builder) List() *List { return b.list }

// SizeBytes estimates the list's memory footprint (key elements plus state
// plus forward links), for memory-occupation accounting (§4.1). The total
// is maintained incrementally at insert, so POL's per-task shipping-cost
// charge is O(1) instead of a full list walk.
func (l *List) SizeBytes() int64 { return l.size }
