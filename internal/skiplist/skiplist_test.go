package skiplist

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"icebergcube/internal/agg"
)

// refModel aggregates the same stream into a plain map for comparison.
type refModel map[string]agg.State

func keyString(k []uint32) string {
	b := make([]byte, 0, 4*len(k))
	for _, v := range k {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

func (m refModel) add(k []uint32, meas float64) {
	s, ok := m[keyString(k)]
	if !ok {
		s = agg.NewState()
	}
	s.Add(meas)
	m[keyString(k)] = s
}

// TestAddGetAgainstMap is the core property test: a skip list fed a random
// stream agrees with a hash map cell for cell.
func TestAddGetAgainstMap(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		l := New(seed, nil)
		ref := refModel{}
		keys := make([][]uint32, 0, int(n)+1)
		for i := 0; i <= int(n)%500; i++ {
			k := []uint32{uint32(rng.Intn(8)), uint32(rng.Intn(6)), uint32(rng.Intn(4))}
			m := float64(rng.Intn(100))
			l.Add(k, m)
			ref.add(k, m)
			keys = append(keys, k)
		}
		if l.Len() != len(ref) {
			return false
		}
		for _, k := range keys {
			st, ok := l.Get(k)
			want := ref[keyString(k)]
			if !ok || st.Count != want.Count || st.Sum != want.Sum || st.Min != want.Min || st.Max != want.Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestScanIsSorted: iteration must always yield keys in strictly increasing
// lexicographic order.
func TestScanIsSorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := New(seed, nil)
		for i := 0; i < 300; i++ {
			l.Add([]uint32{uint32(rng.Intn(10)), uint32(rng.Intn(10))}, 1)
		}
		var prev []uint32
		ok := true
		l.Scan(func(k []uint32, _ agg.State) bool {
			if prev != nil && !lessU32(prev, k) {
				ok = false
				return false
			}
			prev = append(prev[:0], k...)
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func lessU32(a, b []uint32) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// TestScanPrefixGroups: prefix aggregation must equal re-aggregating from
// scratch (ASL's prefix-reuse correctness).
func TestScanPrefixGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := New(1, nil)
	ref := refModel{}
	for i := 0; i < 2000; i++ {
		k := []uint32{uint32(rng.Intn(6)), uint32(rng.Intn(5)), uint32(rng.Intn(4))}
		m := float64(rng.Intn(50))
		l.Add(k, m)
		ref.add(k[:2], m) // reference groups by the 2-element prefix
	}
	got := 0
	l.ScanPrefixGroups(2, func(prefix []uint32, st agg.State) {
		got++
		want := ref[keyString(prefix)]
		if st.Count != want.Count || st.Sum != want.Sum || st.Min != want.Min || st.Max != want.Max {
			t.Fatalf("prefix %v: got %+v want %+v", prefix, st, want)
		}
	})
	if got != len(ref) {
		t.Fatalf("ScanPrefixGroups yielded %d groups, want %d", got, len(ref))
	}
}

// TestMergeStateAndMerge: merging two lists equals building one list from
// the concatenated streams.
func TestMergeStateAndMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, bl, all := New(1, nil), New(2, nil), New(3, nil)
	for i := 0; i < 1500; i++ {
		k := []uint32{uint32(rng.Intn(9)), uint32(rng.Intn(7))}
		m := float64(rng.Intn(30))
		if i%2 == 0 {
			a.Add(k, m)
		} else {
			bl.Add(k, m)
		}
		all.Add(k, m)
	}
	a.Merge(bl)
	if a.Len() != all.Len() {
		t.Fatalf("merged length %d, want %d", a.Len(), all.Len())
	}
	all.Scan(func(k []uint32, want agg.State) bool {
		got, ok := a.Get(k)
		if !ok || got != want {
			t.Fatalf("cell %v: got %+v want %+v", k, got, want)
		}
		return true
	})
}

// TestEmptyList covers the degenerate paths.
func TestEmptyList(t *testing.T) {
	l := New(1, nil)
	if l.Len() != 0 {
		t.Fatal("new list not empty")
	}
	if _, ok := l.Get([]uint32{1}); ok {
		t.Fatal("Get on empty list returned a cell")
	}
	called := false
	l.Scan(func([]uint32, agg.State) bool { called = true; return true })
	l.ScanPrefixGroups(1, func([]uint32, agg.State) { called = true })
	if called {
		t.Fatal("callbacks fired on an empty list")
	}
	if l.SizeBytes() != 0 {
		t.Fatalf("empty list SizeBytes = %d", l.SizeBytes())
	}
}

// TestScanEarlyStop: returning false stops iteration.
func TestScanEarlyStop(t *testing.T) {
	l := New(1, nil)
	for i := 0; i < 10; i++ {
		l.Add([]uint32{uint32(i)}, 1)
	}
	n := 0
	l.Scan(func([]uint32, agg.State) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("scan visited %d cells after early stop, want 3", n)
	}
}

// TestKeyCopied: the list must not alias the caller's key buffer.
func TestKeyCopied(t *testing.T) {
	l := New(1, nil)
	buf := []uint32{1, 2}
	l.Add(buf, 5)
	buf[0] = 99
	if _, ok := l.Get([]uint32{1, 2}); !ok {
		t.Fatal("mutating the caller's buffer corrupted the stored key")
	}
}

// TestCompareCounting: comparisons must be charged to the counter.
func TestCompareCounting(t *testing.T) {
	var ctr countingCounter
	l := New(1, &ctr)
	for i := 0; i < 100; i++ {
		l.Add([]uint32{uint32(i % 10), uint32(i % 7)}, 1)
	}
	if ctr == 0 {
		t.Fatal("no comparisons charged")
	}
}

type countingCounter int64

func (c *countingCounter) AddCompares(n int64) { *c += countingCounter(n) }

// TestDeterministicHeights: same seed, same structure → identical SizeBytes.
func TestDeterministicHeights(t *testing.T) {
	build := func() *List {
		l := New(42, nil)
		for i := 0; i < 500; i++ {
			l.Add([]uint32{uint32(i * 7 % 101)}, float64(i))
		}
		return l
	}
	if a, b := build().SizeBytes(), build().SizeBytes(); a != b {
		t.Fatalf("same-seed lists differ in size: %d vs %d", a, b)
	}
}

// TestBuilderEqualsAdds: bulk-loading sorted groups produces exactly the
// list that per-tuple Adds produce, and stays sorted.
func TestBuilderEqualsAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	keys := make([][]uint32, 600)
	meas := make([]float64, 600)
	for i := range keys {
		keys[i] = []uint32{uint32(rng.Intn(12)), uint32(rng.Intn(9))}
		meas[i] = float64(rng.Intn(40))
	}
	ref := New(1, nil)
	for i := range keys {
		ref.Add(keys[i], meas[i])
	}
	// Sort the stream, aggregate runs, append.
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return lessU32(keys[order[a]], keys[order[b]]) })
	b := NewBuilder(2, nil)
	var cur []uint32
	st := agg.NewState()
	for _, i := range order {
		if cur != nil && lessU32(cur, keys[i]) {
			b.Append(cur, st)
			st = agg.NewState()
			cur = nil
		}
		if cur == nil {
			cur = keys[i]
		}
		st.Add(meas[i])
	}
	b.Append(cur, st)
	built := b.List()
	if built.Len() != ref.Len() {
		t.Fatalf("builder list has %d cells, Add-built has %d", built.Len(), ref.Len())
	}
	ref.Scan(func(k []uint32, want agg.State) bool {
		got, ok := built.Get(k)
		if !ok || got != want {
			t.Fatalf("cell %v: built %+v want %+v", k, got, want)
		}
		return true
	})
	// Built list must interoperate: prefix groups still work.
	n := 0
	built.ScanPrefixGroups(1, func([]uint32, agg.State) { n++ })
	if n == 0 {
		t.Fatal("prefix scan over built list found nothing")
	}
}

// TestBuilderMergesEqualKeys: appending the running maximum merges.
func TestBuilderMergesEqualKeys(t *testing.T) {
	b := NewBuilder(1, nil)
	st := agg.NewState()
	st.Add(3)
	b.Append([]uint32{1}, st)
	b.Append([]uint32{1}, st)
	l := b.List()
	if l.Len() != 1 {
		t.Fatalf("equal keys did not merge: %d cells", l.Len())
	}
	got, _ := l.Get([]uint32{1})
	if got.Count != 2 || got.Sum != 6 {
		t.Fatalf("merged state %+v", got)
	}
}

// TestBuilderRejectsRegression: out-of-order appends must panic.
func TestBuilderRejectsRegression(t *testing.T) {
	b := NewBuilder(1, nil)
	st := agg.NewState()
	st.Add(1)
	b.Append([]uint32{5}, st)
	defer func() {
		if recover() == nil {
			t.Fatal("regressing key did not panic")
		}
	}()
	b.Append([]uint32{4}, st)
}

// TestSortedBulk: inserting presorted and shuffled streams yields the same
// ordered contents.
func TestSortedBulk(t *testing.T) {
	keys := make([]uint32, 400)
	for i := range keys {
		keys[i] = uint32(i % 57)
	}
	shuffled := append([]uint32(nil), keys...)
	rand.New(rand.NewSource(3)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	la, lb := New(1, nil), New(2, nil)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		la.Add([]uint32{k}, 1)
	}
	for _, k := range shuffled {
		lb.Add([]uint32{k}, 1)
	}
	if la.Len() != lb.Len() {
		t.Fatalf("order-dependent contents: %d vs %d", la.Len(), lb.Len())
	}
}
