package wal

import (
	"io/fs"
	"os"
	"sort"
)

// DirFS is the operating-system FS: paths are passed straight to the os
// package. This is what production callers (and cmd/icecube's -waldir)
// use; tests and the crash oracle use MemFS/FaultFS instead.
type DirFS struct{}

// OpenFile implements FS.
func (DirFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// ReadDir implements FS.
func (DirFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS.
func (DirFS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }

// Remove implements FS.
func (DirFS) Remove(name string) error { return os.Remove(name) }

// SyncDir implements FS: fsync the directory so segment creations and
// removals are themselves durable.
func (DirFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
