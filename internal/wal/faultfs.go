package wal

import (
	"errors"
	"io"
	"io/fs"
	"math/rand"
	"sync"
)

// Plan is a seeded fault schedule for FaultFS. Every schedule is
// deterministic: the same plan over the same operation sequence injects
// the same faults (the PR-2 chaos philosophy — failures reproduce).
type Plan struct {
	// Seed drives every random choice: torn-write lengths, transient
	// failures, crash truncation and bit flips.
	Seed int64
	// CrashAtOp, when > 0, crashes the filesystem at the CrashAtOp-th
	// mutating operation (1-based): the op fails with ErrCrashed, the
	// underlying MemFS rolls every file back to its durable watermark
	// plus a seeded torn prefix, and every later operation fails with
	// ErrCrashed too. The crash-recovery oracle sweeps this over every
	// operation index.
	CrashAtOp int
	// FlipBits adds a seeded single-bit flip inside the torn (unsynced
	// but surviving) region of crashed files — corruption that only the
	// record CRC can catch.
	FlipBits bool
	// TransientProb is the per-operation probability of a retryable
	// failure (wrapped in TransientError) on writes and syncs.
	TransientProb float64
	// TornWrites makes transiently failing writes land a seeded prefix
	// of the buffer before reporting the error, so the retry path must
	// repair a torn record rather than just re-issue the write.
	TornWrites bool
}

// FaultFS wraps a MemFS with the Plan's seeded fault injection. Mutating
// operations (creates, writes, syncs, truncates, directory syncs) are
// counted; OpCount after a fault-free run gives the crash-point space to
// sweep.
type FaultFS struct {
	mem  *MemFS
	plan Plan

	mu      sync.Mutex
	rng     *rand.Rand
	ops     int
	crashed bool
}

// NewFaultFS wraps mem with plan's fault schedule.
func NewFaultFS(mem *MemFS, plan Plan) *FaultFS {
	return &FaultFS{mem: mem, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Mem returns the wrapped MemFS — after a crash, its contents are the
// post-crash disk the oracle recovers from.
func (f *FaultFS) Mem() *MemFS { return f.mem }

// OpCount returns how many mutating operations have been issued.
func (f *FaultFS) OpCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the crash point has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// op accounts one mutating operation and decides its fate: nil (proceed),
// ErrCrashed (crash point reached or already crashed), or a transient
// error. It must be called with f.mu held.
func (f *FaultFS) op() error {
	if f.crashed {
		return ErrCrashed
	}
	f.ops++
	if f.plan.CrashAtOp > 0 && f.ops >= f.plan.CrashAtOp {
		f.crashed = true
		f.mem.Crash(f.rng, f.plan.FlipBits)
		return ErrCrashed
	}
	if f.plan.TransientProb > 0 && f.rng.Float64() < f.plan.TransientProb {
		return &TransientError{Err: errors.New("injected fault")}
	}
	return nil
}

// OpenFile implements FS. Creations count as mutating operations.
func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if flag&FlagCreate != 0 {
		f.mu.Lock()
		err := f.op()
		f.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	h, err := f.mem.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultHandle{fs: f, h: h}, nil
}

// ReadDir implements FS (reads are never failed — the oracle crashes
// writers, not readers).
func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.mem.ReadDir(dir) }

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(dir string, perm fs.FileMode) error {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return f.mem.MkdirAll(dir, perm)
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	err := f.op()
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.mem.Remove(name)
}

// SyncDir implements FS.
func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	err := f.op()
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.mem.SyncDir(dir)
}

// faultHandle interposes the plan on one open file.
type faultHandle struct {
	fs *FaultFS
	h  File
}

func (h *faultHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	err := h.fs.op()
	var torn int
	if err != nil && IsTransient(err) && h.fs.plan.TornWrites && len(p) > 0 {
		torn = h.fs.rng.Intn(len(p))
	}
	h.fs.mu.Unlock()
	if err != nil {
		if errors.Is(err, ErrCrashed) {
			return 0, err
		}
		// Transient: land a torn prefix, then fail.
		if torn > 0 {
			h.h.Write(p[:torn])
		}
		return torn, err
	}
	return h.h.Write(p)
}

func (h *faultHandle) Read(p []byte) (int, error) { return h.h.Read(p) }

// ReadAt delegates to the wrapped handle when it supports random access
// (reads are never fault-injected — the oracle crashes writers).
func (h *faultHandle) ReadAt(p []byte, off int64) (int, error) {
	if ra, ok := h.h.(io.ReaderAt); ok {
		return ra.ReadAt(p, off)
	}
	return 0, errors.New("wal: underlying file does not support ReadAt")
}

func (h *faultHandle) Sync() error {
	h.fs.mu.Lock()
	err := h.fs.op()
	h.fs.mu.Unlock()
	if err != nil {
		return err
	}
	return h.h.Sync()
}

func (h *faultHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	err := h.fs.op()
	h.fs.mu.Unlock()
	if err != nil {
		return err
	}
	return h.h.Truncate(size)
}

func (h *faultHandle) Close() error { return h.h.Close() }
