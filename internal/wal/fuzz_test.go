package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path"
	"testing"
	"time"
)

// TestGenWALCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/FuzzWALReplay (run with WAL_GENCORPUS=1; see Makefile's
// corpus target).
func TestGenWALCorpus(t *testing.T) {
	if os.Getenv("WAL_GENCORPUS") == "" {
		t.Skip("set WAL_GENCORPUS=1 to regenerate the seed corpus")
	}
	dir := "testdata/fuzz/FuzzWALReplay"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzSeedLogs() {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		if err := os.WriteFile(fmt.Sprintf("%s/seed-%02d", dir, i), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// fuzzSeedLogs builds the seed corpus: a clean log, a multi-record log, a
// torn one, and a bit-flipped one — each as raw segment bytes.
func fuzzSeedLogs() [][]byte {
	var seeds [][]byte
	build := func(recs ...*Record) []byte {
		fsys := NewMemFS()
		lg, err := Create(fsys, "w", Options{Backoff: time.Nanosecond})
		if err != nil {
			panic(err)
		}
		for _, r := range recs {
			if err := lg.Append(r); err != nil {
				panic(err)
			}
		}
		lg.Close()
		data, _ := fsys.Bytes(path.Join("w", segName(1)))
		return data
	}
	clean := build(
		&Record{Type: TypeBase, Width: 2, Cards: []int{3, 3}, Keys: []uint32{0, 1, 2, 2}, Meas: []float64{1, -4.5}},
		&Record{Type: TypeAppend, Width: 2, Keys: []uint32{1, 0}, Meas: []float64{2}},
		&Record{Type: TypeDelete, Width: 2, Keys: []uint32{0, 1}, Meas: []float64{1}},
		&Record{Type: TypeCommit, Version: 2, Resident: []uint32{1}},
		&Record{Type: TypeAux, Aux: []byte("ext")},
	)
	seeds = append(seeds, nil, clean)
	seeds = append(seeds, clean[:len(clean)-3]) // torn tail
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)/2] ^= 0x10 // mid-log bit flip
	seeds = append(seeds, flipped)
	seeds = append(seeds, bytes.Repeat([]byte{0xff}, 64)) // pure garbage
	return seeds
}

// FuzzWALReplay feeds arbitrary bytes to the replay path as a segment
// file. Whatever the bytes, replay must not panic and must behave like a
// prefix-extractor: Recover's repair must leave a log that (a) replays
// identically and cleanly, and (b) accepts and preserves new appends.
func FuzzWALReplay(f *testing.F) {
	for _, seed := range fuzzSeedLogs() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fsys := NewMemFS()
		fsys.SetBytes(path.Join("w", segName(1)), data)
		res, lg, err := Recover(fsys, "w", Options{Backoff: time.Nanosecond})
		if err != nil {
			if errors.Is(err, ErrNoLog) {
				t.Fatalf("segment present but ErrNoLog: %v", err)
			}
			t.Fatalf("recover on arbitrary bytes must repair, not fail: %v", err)
		}
		// Repaired log replays clean and unchanged.
		res2, err := Replay(fsys, "w")
		if err != nil {
			t.Fatalf("replay after repair: %v", err)
		}
		if res2.Truncated {
			t.Fatalf("repaired log still truncated: %+v", res2)
		}
		if len(res2.Records) != len(res.Records) {
			t.Fatalf("repair changed the record count: %d → %d", len(res.Records), len(res2.Records))
		}
		// The continued log accepts appends and preserves the prefix.
		if err := lg.AppendSync(&Record{Type: TypeCommit, Version: 7}); err != nil {
			t.Fatalf("append after recover: %v", err)
		}
		lg.Close()
		res3, err := Replay(fsys, "w")
		if err != nil {
			t.Fatalf("final replay: %v", err)
		}
		if len(res3.Records) != len(res.Records)+1 {
			t.Fatalf("append after recover lost records: %d vs %d+1", len(res3.Records), len(res.Records))
		}
		last := res3.Records[len(res3.Records)-1]
		if last.Type != TypeCommit || last.Version != 7 {
			t.Fatalf("appended record corrupted: %+v", last)
		}
	})
}
