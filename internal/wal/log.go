package wal

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"time"
)

// Options tune the log writer. The zero value selects the defaults.
type Options struct {
	// SegmentBytes is the rotation threshold: a new segment starts once
	// the current one reaches this size. Default 4 MiB.
	SegmentBytes int64
	// Retries is how many times a transient write/sync failure is
	// retried (after repairing any torn partial write) before the log
	// breaks. Default 4.
	Retries int
	// Backoff is the initial retry delay, doubling per attempt. Default
	// 500µs; tests set it to a nanosecond to keep fault sweeps fast.
	Backoff time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.Retries <= 0 {
		o.Retries = 4
	}
	if o.Backoff <= 0 {
		o.Backoff = 500 * time.Microsecond
	}
	return o
}

// segName renders the index-th segment's file name.
func segName(index int) string { return fmt.Sprintf("wal-%08d.seg", index) }

// segIndex parses a segment file name, returning -1 for other files.
func segIndex(name string) int {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return -1
	}
	var i int
	if _, err := fmt.Sscanf(name, "wal-%08d.seg", &i); err != nil || segName(i) != name {
		return -1
	}
	return i
}

// listSegments returns the directory's segment indices, ascending.
func listSegments(fsys FS, dir string) ([]int, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var idx []int
	for _, n := range names {
		if i := segIndex(n); i >= 0 {
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	return idx, nil
}

// Exists reports whether dir holds a log (at least one segment file).
func Exists(fsys FS, dir string) bool {
	idx, err := listSegments(fsys, dir)
	return err == nil && len(idx) > 0
}

// Log is the append-only record writer. One writer at a time (the ingest
// engine serializes Append/Delete/Commit); Log adds its own lock so
// misuse fails safe rather than corrupting the file.
type Log struct {
	fsys FS
	dir  string
	opt  Options

	mu        sync.Mutex
	seg       File
	segIdx    int
	segSize   int64
	buf       []byte
	broken    error
	closed    bool
	appends   int64
	syncs     int64
	rotations int64
}

// Create initializes a fresh log in dir (created if missing). It fails
// with ErrExists if dir already holds segments — recovery must go through
// Recover so the existing records are replayed, never overwritten.
func Create(fsys FS, dir string, opt Options) (*Log, error) {
	opt = opt.withDefaults()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create %s: %w", dir, err)
	}
	if Exists(fsys, dir) {
		return nil, fmt.Errorf("wal: create %s: %w", dir, ErrExists)
	}
	l := &Log{fsys: fsys, dir: dir, opt: opt, segIdx: 1}
	if err := l.openSegment(l.segIdx, true); err != nil {
		return nil, err
	}
	return l, nil
}

// continueLog reopens the newest valid segment for appending — the
// Recover path, after torn-tail truncation.
func continueLog(fsys FS, dir string, opt Options, segIdx int, segSize int64) (*Log, error) {
	opt = opt.withDefaults()
	l := &Log{fsys: fsys, dir: dir, opt: opt, segIdx: segIdx, segSize: segSize}
	f, err := fsys.OpenFile(path.Join(dir, segName(segIdx)), FlagWrite|FlagAppend, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: continue %s: %w", dir, err)
	}
	l.seg = f
	return l, nil
}

// openSegment creates and syncs segment index (retrying transient
// failures), closing any current one first. Called with l.mu held (or
// before the log is shared).
func (l *Log) openSegment(index int, syncDir bool) error {
	if l.seg != nil {
		// Seal the finished segment: sync it so the durable-prefix
		// property holds across the segment boundary, then drop the
		// handle.
		if err := l.retry(func() error { return l.seg.Sync() }); err != nil {
			return l.breakLog(fmt.Errorf("wal: sealing %s: %w", segName(l.segIdx), err))
		}
		l.seg.Close()
		l.seg = nil
	}
	name := path.Join(l.dir, segName(index))
	var f File
	err := l.retry(func() error {
		var err error
		f, err = l.fsys.OpenFile(name, FlagCreate|FlagWrite|FlagAppend, 0o644)
		return err
	})
	if err != nil {
		return l.breakLog(fmt.Errorf("wal: creating %s: %w", name, err))
	}
	if syncDir {
		if err := l.retry(func() error { return l.fsys.SyncDir(l.dir) }); err != nil {
			f.Close()
			return l.breakLog(fmt.Errorf("wal: syncing dir %s: %w", l.dir, err))
		}
	}
	l.seg, l.segIdx, l.segSize = f, index, 0
	l.rotations++
	return nil
}

// retry runs op, backing off and retrying while it fails transiently.
func (l *Log) retry(op func() error) error {
	backoff := l.opt.Backoff
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil || !IsTransient(err) || attempt >= l.opt.Retries {
			return err
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// breakLog records a permanent failure; every later call fails with
// ErrBroken so no write is acknowledged that might not be durable.
func (l *Log) breakLog(err error) error {
	if l.broken == nil {
		l.broken = err
	}
	return err
}

// Err returns the permanent failure that broke the log, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.broken
}

// Append encodes rec and appends it to the current segment, rotating
// first if the segment is full. The record is buffered in the file (and
// the OS page cache under DirFS) but not yet durable — call Sync (or use
// AppendSync) for the durability barrier. Torn partial writes from
// transient failures are repaired by truncating back to the record start
// before retrying.
func (l *Log) Append(rec *Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.broken != nil {
		return fmt.Errorf("%w: %w", ErrBroken, l.broken)
	}
	if l.segSize >= l.opt.SegmentBytes {
		if err := l.openSegment(l.segIdx+1, true); err != nil {
			return err
		}
	}
	l.buf = appendFrame(l.buf[:0], rec)
	frame := l.buf
	err := l.retry(func() error {
		n, werr := l.seg.Write(frame)
		if werr == nil && n == len(frame) {
			return nil
		}
		if werr == nil {
			werr = fmt.Errorf("wal: short write (%d of %d bytes)", n, len(frame))
		}
		// Repair the torn tail so a retry starts from a clean record
		// boundary (the truncate gets its own transient retries). If the
		// repair fails for good, the failure is permanent — the error is
		// deliberately not marked transient, whatever it wraps.
		if terr := l.retry(func() error { return l.seg.Truncate(l.segSize) }); terr != nil {
			return fmt.Errorf("wal: repairing torn write: %v (after %v)", terr, werr)
		}
		return werr
	})
	if err != nil {
		return l.breakLog(fmt.Errorf("wal: append: %w", err))
	}
	l.segSize += int64(len(frame))
	l.appends++
	return nil
}

// Sync is the durability barrier: after it returns nil, every record
// appended so far survives a crash.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.broken != nil {
		return fmt.Errorf("%w: %w", ErrBroken, l.broken)
	}
	if err := l.retry(func() error { return l.seg.Sync() }); err != nil {
		return l.breakLog(fmt.Errorf("wal: sync: %w", err))
	}
	l.syncs++
	return nil
}

// AppendSync appends rec and immediately syncs — the commit-marker path.
func (l *Log) AppendSync(rec *Record) error {
	if err := l.Append(rec); err != nil {
		return err
	}
	return l.Sync()
}

// Close syncs and releases the log. A broken log closes without syncing.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.seg == nil {
		return nil
	}
	var err error
	if l.broken == nil {
		err = l.retry(func() error { return l.seg.Sync() })
	}
	l.seg.Close()
	l.seg = nil
	return err
}

// Stats reports writer-side counters (appends, syncs, segments started).
func (l *Log) Stats() (appends, syncs, segments int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends, l.syncs, l.rotations
}

// SegmentIndex returns the current segment's index (1-based).
func (l *Log) SegmentIndex() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segIdx
}
