package wal

import (
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"path"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS that models crash durability: every file
// carries a watermark of how many bytes Sync has made durable, and Crash
// rolls each file back to its watermark plus a seeded prefix of the
// unsynced suffix — exactly the adversarial "some of what you wrote but
// didn't fsync survived, some didn't, maybe torn mid-record" outcome a
// real power loss produces. The crash-recovery oracle runs the whole
// ingest engine on a MemFS (usually wrapped in a FaultFS) and recovers
// from the post-crash state.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool
}

type memFile struct {
	fs      *MemFS
	name    string
	data    []byte
	durable int // bytes guaranteed to survive Crash
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile), dirs: map[string]bool{".": true}}
}

// memHandle is one open descriptor onto a memFile.
type memHandle struct {
	f      *memFile
	pos    int
	write  bool
	closed bool
}

// OpenFile implements FS.
func (m *MemFS) OpenFile(name string, flag int, _ fs.FileMode) (File, error) {
	name = path.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		if flag&FlagCreate == 0 {
			return nil, fmt.Errorf("memfs: open %s: %w", name, fs.ErrNotExist)
		}
		if dir := path.Dir(name); !m.dirs[dir] {
			return nil, fmt.Errorf("memfs: open %s: parent %s: %w", name, dir, fs.ErrNotExist)
		}
		f = &memFile{fs: m, name: name}
		m.files[name] = f
	}
	return &memHandle{f: f, write: flag&(FlagWrite|FlagAppend|FlagCreate) != 0}, nil
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	dir = path.Clean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[dir] {
		return nil, fmt.Errorf("memfs: readdir %s: %w", dir, fs.ErrNotExist)
	}
	var names []string
	for name := range m.files {
		if path.Dir(name) == dir {
			names = append(names, path.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS.
func (m *MemFS) MkdirAll(dir string, _ fs.FileMode) error {
	dir = path.Clean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	for d := dir; ; d = path.Dir(d) {
		m.dirs[d] = true
		if d == "." || d == "/" || !strings.Contains(d, "/") {
			break
		}
	}
	return nil
}

// Remove implements FS. Like os.Remove it deletes a file or an empty
// directory.
func (m *MemFS) Remove(name string) error {
	name = path.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; ok {
		delete(m.files, name)
		return nil
	}
	if m.dirs[name] && name != "." {
		prefix := name + "/"
		for f := range m.files {
			if strings.HasPrefix(f, prefix) {
				return fmt.Errorf("memfs: remove %s: directory not empty", name)
			}
		}
		for d := range m.dirs {
			if strings.HasPrefix(d, prefix) {
				return fmt.Errorf("memfs: remove %s: directory not empty", name)
			}
		}
		delete(m.dirs, name)
		return nil
	}
	return fmt.Errorf("memfs: remove %s: %w", name, fs.ErrNotExist)
}

// SyncDir implements FS. Directory entries in MemFS are durable as soon
// as they exist (the crash model only rolls back file contents), so this
// is a no-op.
func (m *MemFS) SyncDir(string) error { return nil }

// Crash simulates a power loss: every file's unsynced suffix survives
// only as an rng-chosen prefix, and with flipBits each torn survivor gets
// one seeded bit flip somewhere in its unsynced region — the corruption
// CRC32C must catch. Open handles remain usable (the oracle discards the
// crashed process's state anyway; recovery reopens everything).
func (m *MemFS) Crash(rng *rand.Rand, flipBits bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic rng consumption order
	for _, name := range names {
		f := m.files[name]
		unsynced := len(f.data) - f.durable
		if unsynced <= 0 {
			continue
		}
		keep := f.durable + rng.Intn(unsynced+1)
		f.data = f.data[:keep]
		if flipBits && keep > f.durable && rng.Intn(2) == 0 {
			i := f.durable + rng.Intn(keep-f.durable)
			f.data[i] ^= 1 << uint(rng.Intn(8))
		}
	}
}

// Bytes returns a copy of one file's current contents (test helper).
func (m *MemFS) Bytes(name string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path.Clean(name)]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), f.data...), true
}

// SetBytes overwrites one file's contents and marks them durable (test
// and fuzz helper for staging arbitrary on-disk states).
func (m *MemFS) SetBytes(name string, data []byte) {
	name = path.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[path.Dir(name)] = true
	m.files[name] = &memFile{fs: m, name: name, data: append([]byte(nil), data...), durable: len(data)}
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.f.fs.mu.Lock()
	defer h.f.fs.mu.Unlock()
	if h.closed || !h.write {
		return 0, fmt.Errorf("memfs: write %s: %w", h.f.name, fs.ErrClosed)
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.f.fs.mu.Lock()
	defer h.f.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if h.pos >= len(h.f.data) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.pos:])
	h.pos += n
	return n, nil
}

// ReadAt implements io.ReaderAt so random-access readers (the segment
// footer/block index) can run over MemFS exactly as over *os.File.
func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.f.fs.mu.Lock()
	defer h.f.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if off < 0 {
		return 0, fmt.Errorf("memfs: readat %s: negative offset", h.f.name)
	}
	if off >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *memHandle) Sync() error {
	h.f.fs.mu.Lock()
	defer h.f.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	h.f.durable = len(h.f.data)
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	h.f.fs.mu.Lock()
	defer h.f.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	if int(size) < len(h.f.data) {
		h.f.data = h.f.data[:size]
	}
	if h.f.durable > len(h.f.data) {
		h.f.durable = len(h.f.data)
	}
	return nil
}

func (h *memHandle) Close() error {
	h.closed = true
	return nil
}
