package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
)

// Type discriminates log records.
type Type uint8

const (
	// TypeBase is the first record of every log: the cube's shape and the
	// full raw row set at attach time (width, per-dimension cardinalities,
	// row-major keys, measures).
	TypeBase Type = iota + 1
	// TypeAppend and TypeDelete are buffered mutation batches, logged in
	// acceptance order (a batch the engine rejected is never logged).
	TypeAppend
	TypeDelete
	// TypeCommit is the durability barrier: the version it publishes plus
	// the serving cache's resident cuboid masks at commit time (the warm-
	// set hint recovery rebuilds from).
	TypeCommit
	// TypeAux is an opaque payload owned by the layer above the cube —
	// the Materialized write path logs dictionary extensions this way.
	TypeAux
)

// Record is one decoded log entry. Which fields are meaningful depends on
// Type; encode/decode validate shape strictly so a corrupt but
// CRC-colliding payload is still rejected.
type Record struct {
	Type Type
	// Width and Cards describe the cube shape (TypeBase).
	Width int
	Cards []int
	// Keys (row-major, Width per row) and Meas carry the rows of
	// TypeBase, TypeAppend and TypeDelete records.
	Keys []uint32
	Meas []float64
	// Version is the snapshot a TypeCommit record publishes.
	Version uint64
	// Resident holds the serving cache's cuboid masks at commit time.
	Resident []uint32
	// Aux is a TypeAux record's opaque payload.
	Aux []byte
}

// ErrCorrupt reports a frame whose checksum matched but whose payload is
// not a well-formed record — treated exactly like a torn frame: the log
// ends there.
var ErrCorrupt = errors.New("wal: corrupt record")

// maxPayload bounds a single record frame. Anything larger is treated as
// corruption (a base record over 256 MiB of raw rows is far past this
// system's memory-resident design point).
const maxPayload = 256 << 20

// frameHeader is the per-record framing overhead: u32 length + u32 CRC32C.
const frameHeader = 8

// appendFrame encodes rec as a framed record onto dst.
func appendFrame(dst []byte, rec *Record) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	payloadStart := len(dst)
	dst = rec.appendPayload(dst)
	payload := dst[payloadStart:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, crcTable))
	return dst
}

// appendPayload serializes the record body (type byte first).
func (rec *Record) appendPayload(dst []byte) []byte {
	dst = append(dst, byte(rec.Type))
	switch rec.Type {
	case TypeBase:
		dst = appendU32(dst, uint32(rec.Width))
		dst = appendU32(dst, uint32(len(rec.Cards)))
		for _, c := range rec.Cards {
			dst = appendU32(dst, uint32(c))
		}
		dst = rec.appendRows(dst)
	case TypeAppend, TypeDelete:
		dst = appendU32(dst, uint32(rec.Width))
		dst = rec.appendRows(dst)
	case TypeCommit:
		dst = appendU64(dst, rec.Version)
		dst = appendU32(dst, uint32(len(rec.Resident)))
		for _, m := range rec.Resident {
			dst = appendU32(dst, m)
		}
	case TypeAux:
		dst = append(dst, rec.Aux...)
	}
	return dst
}

func (rec *Record) appendRows(dst []byte) []byte {
	dst = appendU64(dst, uint64(len(rec.Meas)))
	for _, k := range rec.Keys {
		dst = appendU32(dst, k)
	}
	for _, m := range rec.Meas {
		dst = appendU64(dst, math.Float64bits(m))
	}
	return dst
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// payloadReader walks a payload with bounds checking.
type payloadReader struct {
	p   []byte
	off int
	bad bool
}

func (r *payloadReader) u32() uint32 {
	if r.bad || r.off+4 > len(r.p) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.p[r.off:])
	r.off += 4
	return v
}

func (r *payloadReader) u64() uint64 {
	if r.bad || r.off+8 > len(r.p) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.p[r.off:])
	r.off += 8
	return v
}

// decodePayload parses one checksum-verified payload into a Record.
func decodePayload(p []byte) (Record, error) {
	if len(p) == 0 {
		return Record{}, ErrCorrupt
	}
	rec := Record{Type: Type(p[0])}
	r := &payloadReader{p: p, off: 1}
	switch rec.Type {
	case TypeBase:
		rec.Width = int(r.u32())
		ncards := int(r.u32())
		// Shape sanity before any allocation: everything must fit the
		// remaining payload exactly.
		if r.bad || rec.Width < 0 || ncards < 0 || ncards > (len(p)-r.off)/4 {
			return Record{}, ErrCorrupt
		}
		rec.Cards = make([]int, ncards)
		for i := range rec.Cards {
			rec.Cards[i] = int(r.u32())
		}
		if err := rec.readRows(r); err != nil {
			return Record{}, err
		}
	case TypeAppend, TypeDelete:
		rec.Width = int(r.u32())
		if err := rec.readRows(r); err != nil {
			return Record{}, err
		}
	case TypeCommit:
		rec.Version = r.u64()
		nres := int(r.u32())
		if r.bad || nres < 0 || nres > (len(p)-r.off)/4 {
			return Record{}, ErrCorrupt
		}
		rec.Resident = make([]uint32, nres)
		for i := range rec.Resident {
			rec.Resident[i] = r.u32()
		}
	case TypeAux:
		rec.Aux = append([]byte(nil), p[1:]...)
		return rec, nil
	default:
		return Record{}, ErrCorrupt
	}
	if r.bad || r.off != len(p) {
		return Record{}, ErrCorrupt
	}
	return rec, nil
}

// readRows parses the row block: count, keys, measures. The declared row
// count must match the remaining payload exactly, so allocations are
// bounded by the frame's real size.
func (rec *Record) readRows(r *payloadReader) error {
	n := r.u64()
	if r.bad {
		return ErrCorrupt
	}
	w := rec.Width
	if w < 0 || n > uint64(maxPayload) {
		return ErrCorrupt
	}
	need := n * uint64(4*w+8)
	if uint64(len(r.p)-r.off) != need {
		return ErrCorrupt
	}
	rec.Keys = make([]uint32, int(n)*w)
	for i := range rec.Keys {
		rec.Keys[i] = r.u32()
	}
	rec.Meas = make([]float64, n)
	for i := range rec.Meas {
		rec.Meas[i] = math.Float64frombits(r.u64())
	}
	if r.bad {
		return ErrCorrupt
	}
	return nil
}
