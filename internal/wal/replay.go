package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path"
)

// ReplayResult is what a log directory durably holds.
type ReplayResult struct {
	// Records are the decoded records of the durable prefix, in order.
	Records []Record
	// Truncated reports a torn or corrupt frame ended the log early;
	// TruncatedSeg/TruncatedAt locate it (segment index, byte offset).
	Truncated    bool
	TruncatedSeg int
	TruncatedAt  int64
	// Segments is how many segment files held valid records.
	Segments int
}

// Replay reads the durable record prefix of the log in dir without
// modifying anything: segments in order, frames in order, stopping at the
// first torn or corrupt frame. Corruption never propagates — a bad CRC, a
// truncated frame, an oversized length or a malformed payload all simply
// end the log there.
func Replay(fsys FS, dir string) (*ReplayResult, error) {
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("wal: replay %s: %w", dir, err)
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("wal: replay %s: %w", dir, ErrNoLog)
	}
	res := &ReplayResult{}
	for _, idx := range segs {
		data, err := readAll(fsys, path.Join(dir, segName(idx)))
		if err != nil {
			return nil, fmt.Errorf("wal: replay %s: %w", segName(idx), err)
		}
		valid := scanSegment(data, &res.Records)
		res.Segments++
		if valid < int64(len(data)) {
			// Torn tail: the log ends here; later segments (which can
			// only hold data written after this point) are dead.
			res.Truncated, res.TruncatedSeg, res.TruncatedAt = true, idx, valid
			return res, nil
		}
	}
	return res, nil
}

// scanSegment decodes frames from data into out, returning the byte
// length of the valid prefix.
func scanSegment(data []byte, out *[]Record) int64 {
	off := 0
	for {
		if off+frameHeader > len(data) {
			return int64(off)
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n <= 0 || n > maxPayload || off+frameHeader+n > len(data) {
			return int64(off)
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(payload, crcTable) != sum {
			return int64(off)
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return int64(off)
		}
		*out = append(*out, rec)
		off += frameHeader + n
	}
}

// Recover replays the log in dir, repairs it (truncating the torn tail
// and removing dead later segments), and reopens it for appending. The
// returned log continues exactly where the durable prefix ends, so a
// recovered engine's next Commit extends the same history.
func Recover(fsys FS, dir string, opt Options) (*ReplayResult, *Log, error) {
	res, err := Replay(fsys, dir)
	if err != nil {
		return nil, nil, err
	}
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: recover %s: %w", dir, err)
	}
	lastValid := segs[len(segs)-1]
	if res.Truncated {
		lastValid = res.TruncatedSeg
		// Chop the torn tail off the segment the log ends in.
		f, err := fsys.OpenFile(path.Join(dir, segName(res.TruncatedSeg)), FlagWrite, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: recover %s: %w", dir, err)
		}
		terr := f.Truncate(res.TruncatedAt)
		if serr := f.Sync(); terr == nil {
			terr = serr
		}
		f.Close()
		if terr != nil {
			return nil, nil, fmt.Errorf("wal: recover %s: truncating torn tail: %w", dir, terr)
		}
		// Remove dead segments past the truncation point.
		for _, idx := range segs {
			if idx > lastValid {
				if err := fsys.Remove(path.Join(dir, segName(idx))); err != nil {
					return nil, nil, fmt.Errorf("wal: recover %s: %w", dir, err)
				}
			}
		}
		if err := fsys.SyncDir(dir); err != nil {
			return nil, nil, fmt.Errorf("wal: recover %s: %w", dir, err)
		}
	}
	size := segSize(fsys, dir, lastValid)
	lg, err := continueLog(fsys, dir, opt, lastValid, size)
	if err != nil {
		return nil, nil, err
	}
	return res, lg, nil
}

// segSize returns a segment's current byte length.
func segSize(fsys FS, dir string, idx int) int64 {
	data, err := readAll(fsys, path.Join(dir, segName(idx)))
	if err != nil {
		return 0
	}
	return int64(len(data))
}

// readAll slurps one file through the FS interface.
func readAll(fsys FS, name string) ([]byte, error) {
	f, err := fsys.OpenFile(name, FlagRead, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(readerOnly{f})
}

// readerOnly adapts a File to io.Reader for io.ReadAll.
type readerOnly struct{ f File }

func (r readerOnly) Read(p []byte) (int, error) { return r.f.Read(p) }
