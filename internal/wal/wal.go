// Package wal is the durable write-ahead log under the ingest commit
// engine. The cube itself is memory-resident (the main-memory OLAP
// cluster shape: RAM serving backed by a recoverable log); every
// Append/Delete batch and every Commit marker is appended to a
// checksummed, length-prefixed record log, and Commit's fsync is the
// durability barrier — when ingest.Cube.Commit returns nil, the committed
// version survives any crash.
//
// On-disk layout: a directory of segment files named wal-%08d.seg,
// written strictly in order. Each record is framed as
//
//	[u32 payload length][u32 CRC32C(payload)][payload]
//
// with all integers little-endian. A reader accepts a record only when
// the full frame is present and the checksum matches; the first torn or
// corrupt frame ends the log — everything before it is the durable
// prefix, everything after it (including later segments) is discarded.
// Rotation syncs the finished segment before the next one is created, so
// the durable prefix property holds across segment boundaries.
//
// All file access goes through the FS interface. DirFS is the real
// operating-system implementation; MemFS is an in-memory one that tracks
// an fsync watermark per file so a simulated crash can discard (a seeded
// torn prefix of) unsynced writes; FaultFS wraps MemFS with seeded fault
// injection — transient write/sync failures, torn writes at arbitrary
// byte offsets, bit flips in the torn region, and a crash point at any
// chosen operation — the machinery the crash-recovery oracle kills the
// engine with.
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
)

// Flags mirror the os.O_* values the FS implementations accept.
const (
	FlagRead   = 0x0
	FlagWrite  = 0x1
	FlagCreate = 0x40
	FlagAppend = 0x400
)

var (
	// ErrExists is returned by Create when the directory already holds a
	// log.
	ErrExists = errors.New("wal: log already exists")
	// ErrNoLog is returned by Replay and Recover when the directory holds
	// no segments.
	ErrNoLog = errors.New("wal: no log in directory")
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("wal: log closed")
	// ErrBroken is returned once a write or sync has failed permanently;
	// the log refuses further appends so the caller can degrade to
	// read-only serving instead of acknowledging writes that may not be
	// durable.
	ErrBroken = errors.New("wal: log broken by a prior write failure")
	// ErrCrashed is the failure FaultFS injects at and after its crash
	// point.
	ErrCrashed = errors.New("wal: simulated crash")
)

// TransientError marks a failure as retryable: the log's append/sync path
// backs off and retries (after truncating any torn partial write) instead
// of breaking the log. FaultFS injects these; operating-system errors are
// treated as permanent.
type TransientError struct{ Err error }

func (e *TransientError) Error() string { return fmt.Sprintf("wal: transient: %v", e.Err) }
func (e *TransientError) Unwrap() error { return e.Err }

// IsTransient reports whether err is (or wraps) a TransientError.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// crcTable is the Castagnoli polynomial table (CRC32C, hardware-assisted
// on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// File is the subset of *os.File the log needs.
type File interface {
	// Write appends len(p) bytes. A short write must return an error.
	Write(p []byte) (int, error)
	// Read reads from the handle's cursor (readers only).
	Read(p []byte) (int, error)
	// Sync flushes the file's data to stable storage.
	Sync() error
	// Truncate discards bytes past size (used to repair torn writes).
	Truncate(size int64) error
	// Close releases the handle.
	Close() error
}

// FS is the filesystem surface the log runs on. Paths use forward
// slashes; implementations may interpret them relative to any root.
type FS interface {
	// OpenFile opens name with the given Flag* bits. FlagCreate creates
	// the file if missing; FlagAppend positions every write at the end.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// ReadDir lists the file names in dir in lexical order.
	ReadDir(dir string) ([]string, error)
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string, perm fs.FileMode) error
	// Remove deletes a file or an empty directory.
	Remove(name string) error
	// SyncDir flushes dir's entry table (creations, removals) to stable
	// storage.
	SyncDir(dir string) error
}
