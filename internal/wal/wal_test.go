package wal

import (
	"errors"
	"math"
	"math/rand"
	"path"
	"reflect"
	"testing"
	"time"
)

// fastOpts keeps retry sleeps out of test time.
func fastOpts() Options { return Options{Backoff: time.Nanosecond} }

func mustCreate(t *testing.T, fsys FS, dir string) *Log {
	t.Helper()
	lg, err := Create(fsys, dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	return lg
}

func appendRec(t *testing.T, lg *Log, rec *Record) {
	t.Helper()
	if err := lg.Append(rec); err != nil {
		t.Fatal(err)
	}
}

func sampleRecords() []*Record {
	return []*Record{
		{Type: TypeBase, Width: 2, Cards: []int{3, 4}, Keys: []uint32{0, 1, 2, 3}, Meas: []float64{1.5, -2}},
		{Type: TypeAppend, Width: 2, Keys: []uint32{1, 1}, Meas: []float64{7}},
		{Type: TypeDelete, Width: 2, Keys: []uint32{0, 1}, Meas: []float64{1.5}},
		{Type: TypeCommit, Version: 2, Resident: []uint32{1, 3}},
		{Type: TypeAux, Aux: []byte("dict:hello")},
		{Type: TypeAppend, Width: 2, Keys: nil, Meas: nil}, // empty batch
		{Type: TypeCommit, Version: 3},
	}
}

func TestRoundTrip(t *testing.T) {
	fsys := NewMemFS()
	lg := mustCreate(t, fsys, "db/wal")
	want := sampleRecords()
	for _, rec := range want {
		appendRec(t, lg, rec)
	}
	if err := lg.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Replay(fsys, "db/wal")
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("clean log reported truncated: %+v", res)
	}
	if len(res.Records) != len(want) {
		t.Fatalf("%d records, want %d", len(res.Records), len(want))
	}
	for i, rec := range res.Records {
		w := *want[i]
		// Decoding normalizes nil vs empty slices; compare field-wise.
		if rec.Type != w.Type || rec.Width != w.Width || rec.Version != w.Version {
			t.Fatalf("record %d: %+v want %+v", i, rec, w)
		}
		if !equalU32(rec.Keys, w.Keys) || !equalF64(rec.Meas, w.Meas) ||
			!equalU32(rec.Resident, w.Resident) || string(rec.Aux) != string(w.Aux) {
			t.Fatalf("record %d: %+v want %+v", i, rec, w)
		}
		if w.Cards != nil && !reflect.DeepEqual(rec.Cards, w.Cards) {
			t.Fatalf("record %d cards: %v want %v", i, rec.Cards, w.Cards)
		}
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalF64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			return false
		}
	}
	return true
}

func TestCreateRefusesExistingLog(t *testing.T) {
	fsys := NewMemFS()
	lg := mustCreate(t, fsys, "w")
	lg.Close()
	if _, err := Create(fsys, "w", fastOpts()); !errors.Is(err, ErrExists) {
		t.Fatalf("second Create: %v, want ErrExists", err)
	}
}

func TestSegmentRotation(t *testing.T) {
	fsys := NewMemFS()
	opt := fastOpts()
	opt.SegmentBytes = 64 // tiny: rotate after every record or two
	lg, err := Create(fsys, "w", opt)
	if err != nil {
		t.Fatal(err)
	}
	var want []uint64
	for i := 0; i < 20; i++ {
		appendRec(t, lg, &Record{Type: TypeCommit, Version: uint64(i + 1)})
		want = append(want, uint64(i+1))
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	if lg.SegmentIndex() < 2 {
		t.Fatalf("no rotation happened: still segment %d", lg.SegmentIndex())
	}
	res, err := Replay(fsys, "w")
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments < 2 {
		t.Fatalf("replay saw %d segments", res.Segments)
	}
	if len(res.Records) != len(want) {
		t.Fatalf("%d records, want %d", len(res.Records), len(want))
	}
	for i, rec := range res.Records {
		if rec.Version != want[i] {
			t.Fatalf("record %d version %d, want %d", i, rec.Version, want[i])
		}
	}
}

// TestBitFlipTruncates: a single flipped bit anywhere in a record's frame
// ends the log at that record — earlier records survive, later ones are
// discarded, and recovery repairs the file so the next replay is clean.
func TestBitFlipTruncates(t *testing.T) {
	base := NewMemFS()
	lg := mustCreate(t, base, "w")
	for i := 0; i < 5; i++ {
		appendRec(t, lg, &Record{Type: TypeCommit, Version: uint64(i + 1)})
	}
	lg.Close()
	clean, _ := base.Bytes(path.Join("w", segName(1)))

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		fsys := NewMemFS()
		data := append([]byte(nil), clean...)
		pos := rng.Intn(len(data))
		data[pos] ^= 1 << uint(rng.Intn(8))
		fsys.SetBytes(path.Join("w", segName(1)), data)

		res, lg2, err := Recover(fsys, "w", fastOpts())
		if err != nil {
			t.Fatalf("trial %d: recover: %v", trial, err)
		}
		for i, rec := range res.Records {
			if rec.Type != TypeCommit || rec.Version != uint64(i+1) {
				t.Fatalf("trial %d: surviving record %d corrupted: %+v", trial, i, rec)
			}
		}
		if len(res.Records) >= 5 && res.Truncated {
			t.Fatalf("trial %d: full recovery yet truncated", trial)
		}
		// The repaired log must replay clean and accept appends.
		if err := lg2.AppendSync(&Record{Type: TypeCommit, Version: uint64(len(res.Records) + 1)}); err != nil {
			t.Fatalf("trial %d: append after recover: %v", trial, err)
		}
		lg2.Close()
		res2, err := Replay(fsys, "w")
		if err != nil {
			t.Fatalf("trial %d: second replay: %v", trial, err)
		}
		if res2.Truncated || len(res2.Records) != len(res.Records)+1 {
			t.Fatalf("trial %d: repaired log not clean: %+v vs %d+1 records", trial, res2, len(res.Records))
		}
	}
}

// TestTornTailTruncates: every byte-length prefix of a valid log recovers
// to a record prefix, never to garbage.
func TestTornTailTruncates(t *testing.T) {
	base := NewMemFS()
	lg := mustCreate(t, base, "w")
	for i := 0; i < 4; i++ {
		appendRec(t, lg, &Record{Type: TypeAppend, Width: 1, Keys: []uint32{uint32(i)}, Meas: []float64{float64(i)}})
	}
	lg.Close()
	clean, _ := base.Bytes(path.Join("w", segName(1)))

	prevRecords := -1
	for cut := 0; cut <= len(clean); cut++ {
		fsys := NewMemFS()
		fsys.SetBytes(path.Join("w", segName(1)), clean[:cut])
		res, err := Replay(fsys, "w")
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(res.Records) < prevRecords {
			t.Fatalf("cut %d: record count went backwards", cut)
		}
		prevRecords = len(res.Records)
		for i, rec := range res.Records {
			if rec.Keys[0] != uint32(i) {
				t.Fatalf("cut %d: record %d wrong: %+v", cut, i, rec)
			}
		}
	}
	if prevRecords != 4 {
		t.Fatalf("full log yielded %d records", prevRecords)
	}
}

// TestTransientRetry: a fault plan with transient failures (including
// torn partial writes) but no crash must not lose or corrupt anything —
// the writer repairs and retries.
func TestTransientRetry(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		mem := NewMemFS()
		fsys := NewFaultFS(mem, Plan{Seed: seed, TransientProb: 0.3, TornWrites: true})
		// 0.3^5 ≈ 0.24% per op would exhaust the default budget a few
		// times across 20 seeds × ~90 ops; give the sweep more headroom.
		opt := fastOpts()
		opt.Retries = 10
		lg, err := Create(fsys, "w", opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		const n = 30
		for i := 0; i < n; i++ {
			if err := lg.AppendSync(&Record{Type: TypeCommit, Version: uint64(i + 1)}); err != nil {
				t.Fatalf("seed %d: append %d: %v", seed, i, err)
			}
		}
		lg.Close()
		res, err := Replay(mem, "w")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Truncated || len(res.Records) != n {
			t.Fatalf("seed %d: %d records (truncated=%v), want %d", seed, len(res.Records), res.Truncated, n)
		}
		for i, rec := range res.Records {
			if rec.Version != uint64(i+1) {
				t.Fatalf("seed %d: record %d: %+v", seed, i, rec)
			}
		}
	}
}

// TestBrokenLogRefusesWrites: once retries are exhausted the log breaks
// permanently and every later append fails fast with ErrBroken.
func TestBrokenLogRefusesWrites(t *testing.T) {
	mem := NewMemFS()
	fsys := NewFaultFS(mem, Plan{Seed: 3, TransientProb: 1.0}) // every op fails
	lg := &Log{fsys: fsys, dir: "w", opt: Options{Retries: 2, Backoff: time.Nanosecond, SegmentBytes: 4 << 20}}
	if err := fsys.MkdirAll("w", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := lg.openSegment(1, true); err == nil {
		t.Fatal("openSegment succeeded under a total-failure plan")
	}
	if err := lg.Append(&Record{Type: TypeCommit, Version: 1}); !errors.Is(err, ErrBroken) {
		t.Fatalf("append on broken log: %v, want ErrBroken", err)
	}
	if err := lg.Sync(); !errors.Is(err, ErrBroken) {
		t.Fatalf("sync on broken log: %v, want ErrBroken", err)
	}
	if lg.Err() == nil {
		t.Fatal("Err() nil on broken log")
	}
}

// TestCrashDropsUnsynced: records appended but never synced may vanish at
// a crash; synced records never do.
func TestCrashDropsUnsynced(t *testing.T) {
	mem := NewMemFS()
	lg, err := Create(mem, "w", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	appendRec(t, lg, &Record{Type: TypeCommit, Version: 1})
	if err := lg.Sync(); err != nil {
		t.Fatal(err)
	}
	appendRec(t, lg, &Record{Type: TypeCommit, Version: 2}) // never synced

	mem.Crash(rand.New(rand.NewSource(1)), true)
	res, err := Replay(mem, "w")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) < 1 {
		t.Fatalf("synced record lost: %+v", res)
	}
	if res.Records[0].Version != 1 {
		t.Fatalf("first record corrupted: %+v", res.Records[0])
	}
	if len(res.Records) > 2 {
		t.Fatalf("phantom records after crash: %+v", res)
	}
}

// TestRecoverNoLog: an empty directory is ErrNoLog, not a panic or a
// silent empty cube.
func TestRecoverNoLog(t *testing.T) {
	fsys := NewMemFS()
	fsys.MkdirAll("w", 0o755)
	if _, err := Replay(fsys, "w"); !errors.Is(err, ErrNoLog) {
		t.Fatalf("replay of empty dir: %v", err)
	}
	if _, _, err := Recover(fsys, "w", fastOpts()); !errors.Is(err, ErrNoLog) {
		t.Fatalf("recover of empty dir: %v", err)
	}
	if Exists(fsys, "w") {
		t.Fatal("Exists true for empty dir")
	}
}

// TestDirFSRoundTrip exercises the real-OS implementation end to end.
func TestDirFSRoundTrip(t *testing.T) {
	dir := t.TempDir() + "/wal"
	lg, err := Create(DirFS{}, dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for _, rec := range want {
		appendRec(t, lg, rec)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	res, lg2, err := Recover(DirFS{}, dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	if res.Truncated || len(res.Records) != len(want) {
		t.Fatalf("dirfs replay: %d records (truncated=%v), want %d", len(res.Records), res.Truncated, len(want))
	}
	if err := lg2.AppendSync(&Record{Type: TypeCommit, Version: 99}); err != nil {
		t.Fatal(err)
	}
	res2, err := Replay(DirFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Records) != len(want)+1 {
		t.Fatalf("continued dirfs log: %d records", len(res2.Records))
	}
	if !Exists(DirFS{}, dir) {
		t.Fatal("Exists false for a real log")
	}
}

// TestFaultFSCrashSweep: whatever operation the crash lands on, replaying
// the post-crash disk never errors and yields a prefix of the commit
// sequence.
func TestFaultFSCrashSweep(t *testing.T) {
	// Fault-free pass to size the op space.
	mem := NewMemFS()
	probe := NewFaultFS(mem, Plan{Seed: 1})
	writeSeq := func(fsys FS) (int, error) {
		lg, err := Create(fsys, "w", fastOpts())
		if err != nil {
			return 0, err
		}
		acked := 0
		for i := 0; i < 8; i++ {
			if err := lg.AppendSync(&Record{Type: TypeCommit, Version: uint64(i + 1)}); err != nil {
				return acked, err
			}
			acked = i + 1
		}
		return acked, lg.Close()
	}
	if _, err := writeSeq(probe); err != nil {
		t.Fatal(err)
	}
	total := probe.OpCount()
	if total < 10 {
		t.Fatalf("suspiciously few ops: %d", total)
	}
	for k := 1; k <= total; k++ {
		mem := NewMemFS()
		fsys := NewFaultFS(mem, Plan{Seed: int64(100 + k), CrashAtOp: k, FlipBits: true})
		acked, _ := writeSeq(fsys)
		if !fsys.Crashed() {
			t.Fatalf("crash at op %d never fired", k)
		}
		res, _, err := Recover(mem, "w", fastOpts())
		if err != nil {
			if errors.Is(err, ErrNoLog) {
				// Crashed before the first segment was created.
				if acked != 0 {
					t.Fatalf("op %d: %d acked commits but no log", k, acked)
				}
				continue
			}
			t.Fatalf("op %d: recover: %v", k, err)
		}
		if len(res.Records) < acked {
			t.Fatalf("op %d: %d acked commits, only %d recovered", k, acked, len(res.Records))
		}
		for i, rec := range res.Records {
			if rec.Type != TypeCommit || rec.Version != uint64(i+1) {
				t.Fatalf("op %d: recovered record %d wrong: %+v", k, i, rec)
			}
		}
	}
}
