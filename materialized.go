package icebergcube

import (
	"fmt"
	"sort"

	"icebergcube/internal/agg"
	"icebergcube/internal/core"
	"icebergcube/internal/exp"
	"icebergcube/internal/lattice"
	"icebergcube/internal/results"
)

// Materialized is the §5.1 precomputation: the finest cuboid (all cube
// dimensions) materialized once at a low threshold, from which any
// group-by over those dimensions with an equal-or-higher threshold is
// answered by aggregation — no re-scan of the raw data. The paper shows
// this leaves-only precompute is cheaper than a full cube and answers
// online queries "almost immediately".
type Materialized struct {
	ds     *Dataset
	dims   []int
	attrs  []string
	minsup int64
	cells  *results.Set
	// PrecomputeSeconds is the simulated parallel precomputation time.
	PrecomputeSeconds float64
}

// Materialize precomputes the finest cuboid over dims (nil = all data-set
// dimensions) in parallel on `workers` simulated nodes. The cuboid is kept
// at minimum support 1 — exactly as the paper's §5.1 plan does — because a
// filtered leaf would undercount coarser group-bys (cells below the floor
// still contribute to their ancestors' aggregates).
func Materialize(ds *Dataset, dims []string, workers int) (*Materialized, error) {
	idx, err := ds.resolveDims(dims)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = 8
	}
	set := results.NewSet()
	rep, err := exp.PrecomputeLeaf(core.Run{
		Rel:     ds.rel,
		Dims:    idx,
		Cond:    agg.MinSupport(1),
		Workers: workers,
		Sink:    set,
		Seed:    1,
	})
	if err != nil {
		return nil, err
	}
	attrs := make([]string, len(idx))
	for i, d := range idx {
		attrs[i] = ds.rel.Name(d)
	}
	return &Materialized{
		ds:                ds,
		dims:              idx,
		attrs:             attrs,
		minsup:            1,
		cells:             set,
		PrecomputeSeconds: rep.Makespan,
	}, nil
}

// Answer computes one iceberg group-by from the materialized cuboid:
// SELECT groupBy..., aggregates HAVING COUNT(*) >= minSupport, for any
// threshold — the minsup-1 leaf loses nothing. groupBy must be a subset of
// the materialized dimensions.
func (m *Materialized) Answer(groupBy []string, minSupport int64) ([]Cell, error) {
	if minSupport < 1 {
		minSupport = 1
	}
	pos := make([]int, len(groupBy))
	for i, name := range groupBy {
		found := -1
		for j, a := range m.attrs {
			if a == name {
				found = j
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("icebergcube: %q is not a materialized dimension", name)
		}
		pos[i] = found
	}
	// Keep positions in ascending cube order for canonical keys.
	order := append([]int(nil), pos...)
	sort.Ints(order)
	attrs := make([]string, len(order))
	for i, p := range order {
		attrs[i] = m.attrs[p]
	}

	// Aggregate the leaf cuboid's cells onto the requested attributes.
	var fullMask lattice.Mask
	for p := range m.dims {
		fullMask |= 1 << uint(p)
	}
	groups := make(map[string]agg.State)
	for k, st := range m.cells.Cuboid(fullMask) {
		key := results.DecodeKey(k)
		sub := make([]byte, 4*len(order))
		for i, p := range order {
			v := key[p]
			sub[4*i] = byte(v)
			sub[4*i+1] = byte(v >> 8)
			sub[4*i+2] = byte(v >> 16)
			sub[4*i+3] = byte(v >> 24)
		}
		g, ok := groups[string(sub)]
		if !ok {
			g = agg.NewState()
		}
		g.Merge(st)
		groups[string(sub)] = g
	}

	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	cond := agg.MinSupport(minSupport)
	cells := make([]Cell, 0, len(keys))
	for _, k := range keys {
		st := groups[k]
		if !cond.Holds(st) {
			continue
		}
		codes := results.DecodeKey(k)
		values := make([]string, len(codes))
		for i, c := range codes {
			values[i] = m.ds.decode(m.dims[order[i]], c)
		}
		cells = append(cells, Cell{
			Attrs:  attrs,
			Values: values,
			Count:  st.Count,
			Sum:    st.Value(agg.Sum),
			Min:    st.Value(agg.Min),
			Max:    st.Value(agg.Max),
			Avg:    st.Value(agg.Avg),
		})
	}
	return cells, nil
}

// NumCells returns the materialized cuboid's cell count.
func (m *Materialized) NumCells() int { return m.cells.NumCells() }
