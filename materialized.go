package icebergcube

import (
	"fmt"
	"sort"

	"icebergcube/internal/agg"
	"icebergcube/internal/core"
	"icebergcube/internal/exp"
	"icebergcube/internal/lattice"
	"icebergcube/internal/results"
	"icebergcube/internal/serve"
)

// Materialized is the §5.1 precomputation: the finest cuboid (all cube
// dimensions) materialized once at a low threshold, from which any
// group-by over those dimensions with an equal-or-higher threshold is
// answered by aggregation — no re-scan of the raw data. On top of the
// paper's plan sits a lattice-aware serving layer: every query is
// rewritten to aggregate from the smallest already-resident ancestor
// cuboid (the leaf is only the worst case), and computed cuboids are
// retained in a byte-budgeted LRU cache so repeated and nearby query
// shapes amortize to near-lookup cost. Safe for concurrent queries.
type Materialized struct {
	ds     *Dataset
	dims   []int
	attrs  []string
	pos    map[string]int // attribute name → materialized position
	minsup int64
	cells  *results.Set
	srv    *serve.Server
	// PrecomputeSeconds is the simulated parallel precomputation time.
	PrecomputeSeconds float64
}

// ServeStats reports how one Answer was served — which resident cuboid
// the rewrite picked, whether it was a cache hit, and how much work the
// miss cost.
type ServeStats struct {
	// ServedFrom names the attributes of the resident cuboid the answer
	// was aggregated from (the query's own attributes on a cache hit; all
	// materialized dimensions when the leaf had to be rescanned).
	ServedFrom []string
	// CacheHit reports the cuboid was already resident — no aggregation.
	CacheHit bool
	// Coalesced reports this query waited on an identical concurrent miss
	// instead of computing its own copy.
	Coalesced bool
	// CellsScanned is the number of ancestor cells aggregated (0 on a
	// hit).
	CellsScanned int
	// Admitted reports the computed cuboid was retained in the cache.
	Admitted bool
}

// CacheMetrics are the serving layer's cumulative counters.
type CacheMetrics struct {
	// Queries, CacheHits and Coalesced count Answer traffic: total,
	// answered from a resident cuboid, and piggybacked on a concurrent
	// identical miss.
	Queries   int64
	CacheHits int64
	Coalesced int64
	// LeafAggregations and AncestorAggregations split the misses by
	// source: full leaf rescans vs aggregations from a smaller cached
	// ancestor.
	LeafAggregations     int64
	AncestorAggregations int64
	// Evictions, ResidentBytes, ResidentCuboids and BudgetBytes describe
	// the byte-budgeted cuboid cache (the pinned leaf is excluded and
	// never evicted). ResidentBytes never exceeds BudgetBytes.
	Evictions       int64
	ResidentBytes   int64
	ResidentCuboids int
	BudgetBytes     int64
}

// Materialize precomputes the finest cuboid over dims (nil = all data-set
// dimensions) in parallel on `workers` simulated nodes. The cuboid is kept
// at minimum support 1 — exactly as the paper's §5.1 plan does — because a
// filtered leaf would undercount coarser group-bys (cells below the floor
// still contribute to their ancestors' aggregates).
func Materialize(ds *Dataset, dims []string, workers int) (*Materialized, error) {
	idx, err := ds.resolveDims(dims)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = 8
	}
	set := results.NewSet()
	rep, err := exp.PrecomputeLeaf(core.Run{
		Rel:     ds.rel,
		Dims:    idx,
		Cond:    agg.MinSupport(1),
		Workers: workers,
		Sink:    set,
		Seed:    1,
	})
	if err != nil {
		return nil, err
	}
	attrs := make([]string, len(idx))
	pos := make(map[string]int, len(idx))
	cards := make([]int, len(idx))
	for i, d := range idx {
		attrs[i] = ds.rel.Name(d)
		pos[attrs[i]] = i
		cards[i] = ds.rel.Card(d)
	}
	var fullMask lattice.Mask
	for p := range idx {
		fullMask |= 1 << uint(p)
	}
	keys, states := set.CuboidColumns(fullMask)
	leaf := &serve.Cuboid{Mask: fullMask, Width: len(idx), Keys: keys, States: states}
	return &Materialized{
		ds:                ds,
		dims:              idx,
		attrs:             attrs,
		pos:               pos,
		minsup:            1,
		cells:             set,
		srv:               serve.NewServer(leaf, cards, 0),
		PrecomputeSeconds: rep.Makespan,
	}, nil
}

// SetCacheBudget resizes the serving cache's byte budget (≤ 0 restores
// the default), evicting least-recently-used cuboids until the resident
// set fits. The leaf is pinned outside the budget.
func (m *Materialized) SetCacheBudget(bytes int64) { m.srv.SetBudget(bytes) }

// ResetCache drops every cached cuboid (the leaf stays resident).
func (m *Materialized) ResetCache() { m.srv.Reset() }

// CacheMetrics returns the serving layer's cumulative counters.
func (m *Materialized) CacheMetrics() CacheMetrics {
	s := m.srv.Stats()
	return CacheMetrics{
		Queries:              s.Queries,
		CacheHits:            s.CacheHits,
		Coalesced:            s.Coalesced,
		LeafAggregations:     s.LeafAggregations,
		AncestorAggregations: s.AncestorAggregations,
		Evictions:            s.Evictions,
		ResidentBytes:        s.ResidentBytes,
		ResidentCuboids:      s.ResidentCuboids,
		BudgetBytes:          s.BudgetBytes,
	}
}

// resolveGroupBy maps groupBy names to ascending materialized positions
// and the cuboid mask, rejecting unknown and duplicate attributes.
func (m *Materialized) resolveGroupBy(groupBy []string) ([]int, lattice.Mask, error) {
	var mask lattice.Mask
	for _, name := range groupBy {
		p, ok := m.pos[name]
		if !ok {
			return nil, 0, fmt.Errorf("icebergcube: %q is not a materialized dimension", name)
		}
		if mask.Has(p) {
			return nil, 0, fmt.Errorf("icebergcube: duplicate group-by attribute %q", name)
		}
		mask |= 1 << uint(p)
	}
	return mask.Dims(), mask, nil
}

// Answer computes one iceberg group-by from the materialized cuboid:
// SELECT groupBy..., aggregates HAVING COUNT(*) >= minSupport, for any
// threshold — the minsup-1 leaf loses nothing. groupBy must be a
// duplicate-free subset of the materialized dimensions. Cells come back
// in ascending value-tuple order, the same order Result.Cuboid uses.
func (m *Materialized) Answer(groupBy []string, minSupport int64) ([]Cell, error) {
	cells, _, err := m.AnswerStats(groupBy, minSupport)
	return cells, err
}

// AnswerStats is Answer plus serving observability: which resident cuboid
// answered, whether it was a cache hit, and how many cells were scanned.
func (m *Materialized) AnswerStats(groupBy []string, minSupport int64) ([]Cell, ServeStats, error) {
	if minSupport < 1 {
		minSupport = 1
	}
	order, mask, err := m.resolveGroupBy(groupBy)
	if err != nil {
		return nil, ServeStats{}, err
	}
	cub, qs, err := m.srv.Query(mask)
	if err != nil {
		return nil, ServeStats{}, err
	}
	attrs := make([]string, len(order))
	for i, p := range order {
		attrs[i] = m.attrs[p]
	}
	stats := ServeStats{
		ServedFrom:   m.maskAttrs(qs.ServedFrom),
		CacheHit:     qs.CacheHit,
		Coalesced:    qs.Coalesced,
		CellsScanned: qs.CellsScanned,
		Admitted:     qs.Admitted,
	}
	cond := agg.MinSupport(minSupport)
	cells := make([]Cell, 0, cub.Rows())
	for i := 0; i < cub.Rows(); i++ {
		st := cub.States[i]
		if !cond.Holds(st) {
			continue
		}
		values := make([]string, len(order))
		if cub.Width > 0 {
			for j, c := range cub.Row(i) {
				values[j] = m.ds.decode(m.dims[order[j]], c)
			}
		}
		cells = append(cells, Cell{
			Attrs:  attrs,
			Values: values,
			Count:  st.Count,
			Sum:    st.Value(agg.Sum),
			Min:    st.Value(agg.Min),
			Max:    st.Value(agg.Max),
			Avg:    st.Value(agg.Avg),
		})
	}
	return cells, stats, nil
}

// maskAttrs renders a serving mask as attribute names.
func (m *Materialized) maskAttrs(mask lattice.Mask) []string {
	dims := mask.Dims()
	names := make([]string, len(dims))
	for i, p := range dims {
		names[i] = m.attrs[p]
	}
	return names
}

// invalidate drops one group-by from the serving cache; benchmarks use it
// to measure the miss path repeatedly.
func (m *Materialized) invalidate(groupBy []string) error {
	_, mask, err := m.resolveGroupBy(groupBy)
	if err != nil {
		return err
	}
	m.srv.Invalidate(mask)
	return nil
}

// answerLeafRescan is the pre-serving-layer Answer: rescan every leaf
// cell through a string-keyed map, whatever the query shape. It is kept
// as the differential reference the oracle suite and the serving
// benchmarks compare against.
func (m *Materialized) answerLeafRescan(groupBy []string, minSupport int64) ([]Cell, error) {
	if minSupport < 1 {
		minSupport = 1
	}
	order, _, err := m.resolveGroupBy(groupBy)
	if err != nil {
		return nil, err
	}
	attrs := make([]string, len(order))
	for i, p := range order {
		attrs[i] = m.attrs[p]
	}

	// Aggregate the leaf cuboid's cells onto the requested attributes.
	var fullMask lattice.Mask
	for p := range m.dims {
		fullMask |= 1 << uint(p)
	}
	groups := make(map[string]agg.State)
	for k, st := range m.cells.Cuboid(fullMask) {
		key := results.DecodeKey(k)
		sub := make([]byte, 4*len(order))
		for i, p := range order {
			v := key[p]
			sub[4*i] = byte(v)
			sub[4*i+1] = byte(v >> 8)
			sub[4*i+2] = byte(v >> 16)
			sub[4*i+3] = byte(v >> 24)
		}
		g, ok := groups[string(sub)]
		if !ok {
			g = agg.NewState()
		}
		g.Merge(st)
		groups[string(sub)] = g
	}

	keys := make([][]uint32, 0, len(groups))
	for k := range groups {
		keys = append(keys, results.DecodeKey(k))
	}
	sort.Slice(keys, func(a, b int) bool { return results.CompareTuples(keys[a], keys[b]) < 0 })
	cond := agg.MinSupport(minSupport)
	cells := make([]Cell, 0, len(keys))
	for _, codes := range keys {
		buf := make([]byte, 4*len(codes))
		for i, v := range codes {
			buf[4*i] = byte(v)
			buf[4*i+1] = byte(v >> 8)
			buf[4*i+2] = byte(v >> 16)
			buf[4*i+3] = byte(v >> 24)
		}
		st := groups[string(buf)]
		if !cond.Holds(st) {
			continue
		}
		values := make([]string, len(codes))
		for i, c := range codes {
			values[i] = m.ds.decode(m.dims[order[i]], c)
		}
		cells = append(cells, Cell{
			Attrs:  attrs,
			Values: values,
			Count:  st.Count,
			Sum:    st.Value(agg.Sum),
			Min:    st.Value(agg.Min),
			Max:    st.Value(agg.Max),
			Avg:    st.Value(agg.Avg),
		})
	}
	return cells, nil
}

// NumCells returns the materialized cuboid's cell count.
func (m *Materialized) NumCells() int { return m.cells.NumCells() }
