package icebergcube

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"icebergcube/internal/agg"
	"icebergcube/internal/cluster"
	"icebergcube/internal/core"
	"icebergcube/internal/exp"
	"icebergcube/internal/ingest"
	"icebergcube/internal/lattice"
	"icebergcube/internal/results"
	"icebergcube/internal/serve"
)

// Materialized is the §5.1 precomputation: the finest cuboid (all cube
// dimensions) materialized once at a low threshold, from which any
// group-by over those dimensions with an equal-or-higher threshold is
// answered by aggregation — no re-scan of the raw data. On top of the
// paper's plan sits a lattice-aware serving layer: every query is
// rewritten to aggregate from the smallest already-resident ancestor
// cuboid (the leaf is only the worst case), and computed cuboids are
// retained in a byte-budgeted LRU cache so repeated and nearby query
// shapes amortize to near-lookup cost.
//
// Unlike the paper's compute-once plan, the cube is maintainable: Append
// and Delete batch row mutations into a pending delta, and Commit folds
// the delta into the leaf and every resident cuboid by delta aggregation
// (agg.State.Retract), publishing an immutable versioned Snapshot.
// Readers are never blocked and never see a torn cube: queries resolve
// the current version once and serve from its immutable state, and
// AnswerAt pins any retained version explicitly (time travel).
//
// Safe for concurrent queries; Append/Delete/Commit may run concurrently
// with queries (writes are serialized internally).
type Materialized struct {
	ds    *Dataset
	dims  []int
	attrs []string
	pos   map[string]int // attribute name → materialized position
	cube  *ingest.Cube

	// ext extends the dataset's dictionary with values first seen by
	// Append: per materialized position, codes ≥ ext[p].base decode
	// through ext[p].values. Guarded by extMu; the base code space is
	// immutable and read without locking.
	extMu sync.RWMutex
	ext   []extDim

	// bgExec and bgPool back the adaptive policy's background
	// materializer when SetCachePolicy asked for one; both are released
	// by Close. Guarded by polMu.
	polMu  sync.Mutex
	bgExec *serve.Background
	bgPool *cluster.Pool

	// PrecomputeSeconds is the simulated parallel precomputation time.
	PrecomputeSeconds float64
}

// extDim is one dimension's dictionary extension for appended values.
type extDim struct {
	base   int // codes < base belong to the dataset's own dictionary
	codes  map[string]uint32
	values []string
}

// Snapshot describes one committed, immutable cube version.
type Snapshot struct {
	// Version is the monotonically increasing snapshot id; Materialize
	// publishes version 1.
	Version uint64
	// Rows is the live tuple count at this version.
	Rows int64
	// Cells and Bytes describe this version's leaf cuboid.
	Cells int
	Bytes int64
	// Appended and Deleted count the tuples of the commit that produced
	// this version.
	Appended int
	Deleted  int
	// FoldedCuboids and DirtyCuboids count the resident cuboids carried
	// into this version by delta aggregation vs dropped for lazy
	// re-derivation (a deletion touched their MIN/MAX).
	FoldedCuboids int
	DirtyCuboids  int
	// RetractedCells and RecomputedCells split the leaf maintenance work
	// by mechanism: exact state arithmetic vs re-derivation from rows.
	RetractedCells  int
	RecomputedCells int
	// CommitSeconds is the host wall-clock cost of the commit.
	CommitSeconds float64
}

func publicSnapshot(s ingest.Snapshot) Snapshot {
	return Snapshot{
		Version:         s.Version,
		Rows:            s.Rows,
		Cells:           s.LeafCells,
		Bytes:           s.LeafBytes,
		Appended:        s.Appended,
		Deleted:         s.Deleted,
		FoldedCuboids:   s.Folded,
		DirtyCuboids:    s.Dirty,
		RetractedCells:  s.Retracted,
		RecomputedCells: s.Recomputed,
		CommitSeconds:   s.CommitSeconds,
	}
}

// ServeStats reports how one Answer was served — which resident cuboid
// the rewrite picked, whether it was a cache hit, and how much work the
// miss cost.
type ServeStats struct {
	// ServedFrom names the attributes of the resident cuboid the answer
	// was aggregated from (the query's own attributes on a cache hit; all
	// materialized dimensions when the leaf had to be rescanned).
	ServedFrom []string
	// CacheHit reports the cuboid was already resident — no aggregation.
	CacheHit bool
	// Coalesced reports this query waited on an identical concurrent miss
	// instead of computing its own copy.
	Coalesced bool
	// CellsScanned is the number of ancestor cells aggregated (0 on a
	// hit).
	CellsScanned int
	// Admitted reports the computed cuboid was retained in the cache.
	Admitted bool
	// Version is the snapshot the answer was served at.
	Version uint64
}

// CacheMetrics are the serving layer's cumulative counters. Traffic
// counters accumulate across snapshots (a commit swaps the serving state
// but does not reset observability); occupancy fields describe the
// current version's cache.
type CacheMetrics struct {
	// Queries, CacheHits and Coalesced count Answer traffic: total,
	// answered from a resident cuboid, and piggybacked on a concurrent
	// identical miss.
	Queries   int64
	CacheHits int64
	Coalesced int64
	// Canceled counts queries abandoned by context cancellation before an
	// answer was produced.
	Canceled int64
	// LeafAggregations and AncestorAggregations split the misses by
	// source: full leaf rescans vs aggregations from a smaller cached
	// ancestor.
	LeafAggregations     int64
	AncestorAggregations int64
	// Evictions, ResidentBytes, ResidentCuboids and BudgetBytes describe
	// the byte-budgeted cuboid cache (the pinned leaf is excluded and
	// never evicted). ResidentBytes never exceeds BudgetBytes.
	Evictions       int64
	ResidentBytes   int64
	ResidentCuboids int
	BudgetBytes     int64
	// BackgroundFills and BackgroundAdmitted count cuboids the adaptive
	// policy materialized off the query path and how many the cache
	// retained; Replans counts its planning passes. All zero under LRU.
	BackgroundFills    int64
	BackgroundAdmitted int64
	Replans            int64
	// Policy names the current snapshot's admission policy ("lru" or
	// "adaptive").
	Policy string
}

// CachePolicy selects the serving cache's admission policy.
type CachePolicy string

const (
	// CacheLRU is the default recency policy: admit every computed
	// cuboid, evict least-recently-used.
	CacheLRU CachePolicy = "lru"
	// CacheAdaptive is the workload-adaptive policy: per-cuboid demand
	// stats drive a periodic greedy benefit-per-byte plan, planned
	// cuboids are materialized in the background, and eviction removes
	// the lowest retained benefit per byte.
	CacheAdaptive CachePolicy = "adaptive"
)

// CachePolicyConfig configures SetCachePolicy.
type CachePolicyConfig struct {
	// Policy selects LRU or adaptive admission (empty = LRU).
	Policy CachePolicy
	// Seed drives the adaptive planner's deterministic tie-breaks
	// (0 = 1). Two caches configured with the same seed and fed the same
	// query sequence make identical decisions.
	Seed int64
	// ReplanEvery re-plans after this many queries (≤ 0 = the serving
	// default, 64). Commits always trigger a re-plan regardless.
	ReplanEvery int
	// BackgroundCores > 0 attaches a background materializer fanning
	// fills across that many cores, so planned cuboids are computed off
	// the query path. 0 keeps re-plans and fills synchronous: they run
	// inline on the query that triggers them — fully deterministic, the
	// mode the adaptive-vs-LRU oracle and experiments use.
	BackgroundCores int
}

// SetCachePolicy switches the serving cache's admission policy for the
// current and, via commit handoff, all future snapshots. Answers are
// byte-identical under either policy — the policy only decides which
// cuboids stay resident, i.e. how fast queries are served. Switching
// releases any previous background machinery.
func (m *Materialized) SetCachePolicy(cfg CachePolicyConfig) error {
	var p serve.Policy
	switch cfg.Policy {
	case CacheLRU, "":
		p = serve.PolicyLRU
	case CacheAdaptive:
		p = serve.PolicyAdaptive
	default:
		return fmt.Errorf("icebergcube: unknown cache policy %q", cfg.Policy)
	}
	m.polMu.Lock()
	defer m.polMu.Unlock()
	m.releaseBackgroundLocked()
	var bg *serve.Background
	if p == serve.PolicyAdaptive && cfg.BackgroundCores > 0 {
		m.bgPool = cluster.NewPool(cfg.BackgroundCores)
		m.bgExec = serve.NewBackground(m.bgPool)
		bg = m.bgExec
	}
	m.cube.SetServePolicy(serve.PolicyOptions{
		Policy:      p,
		Seed:        cfg.Seed,
		ReplanEvery: cfg.ReplanEvery,
	}, bg)
	return nil
}

// WaitBackground blocks until the adaptive policy's background queue is
// drained (a no-op under LRU or synchronous adaptive mode). Tests and the
// CLI stats dump use it to observe a quiescent cache.
func (m *Materialized) WaitBackground() {
	m.polMu.Lock()
	bg := m.bgExec
	m.polMu.Unlock()
	if bg != nil {
		bg.Wait()
	}
}

// releaseBackgroundLocked stops the background executor and its pool.
// Caller holds polMu.
func (m *Materialized) releaseBackgroundLocked() {
	if m.bgExec != nil {
		m.bgExec.Close()
		m.bgExec = nil
	}
	if m.bgPool != nil {
		m.bgPool.Close()
		m.bgPool = nil
	}
}

// CuboidStat is one group-by shape's serving history: observed traffic,
// measured size and derive cost, and its standing with the adaptive
// planner. Shapes are reported for the current snapshot's server (the
// stats table is carried across commits).
type CuboidStat struct {
	// Attrs names the shape's group-by attributes (empty = the ALL
	// cuboid).
	Attrs []string
	// Hits, Misses and BackgroundFills count queries served while
	// resident, queries that had to aggregate, and background
	// materializations.
	Hits, Misses, BackgroundFills int64
	// Cells and Bytes are the cuboid's measured size (zero until first
	// computed); DeriveCells the ancestor cells scanned at its last
	// derivation.
	Cells       int
	Bytes       int64
	DeriveCells int
	// Resident reports current cache residency; Planned whether the last
	// adaptive re-plan selected the shape as a benefit-per-byte winner.
	Resident, Planned bool
}

// CuboidStats returns the current snapshot's per-cuboid serving stats,
// sorted by lattice mask. The CLI's -stats flag dumps these.
func (m *Materialized) CuboidStats() []CuboidStat {
	rows := m.cube.Current().Srv.CuboidStats()
	out := make([]CuboidStat, len(rows))
	for i, r := range rows {
		out[i] = CuboidStat{
			Attrs:           m.maskAttrs(r.Mask),
			Hits:            r.Hits,
			Misses:          r.Misses,
			BackgroundFills: r.BackgroundFills,
			Cells:           r.Rows,
			Bytes:           r.Bytes,
			DeriveCells:     r.DeriveCells,
			Resident:        r.Resident,
			Planned:         r.Planned,
		}
	}
	return out
}

// Materialize precomputes the finest cuboid over dims (nil = all data-set
// dimensions) in parallel on `workers` simulated nodes. The cuboid is kept
// at minimum support 1 — exactly as the paper's §5.1 plan does — because a
// filtered leaf would undercount coarser group-bys (cells below the floor
// still contribute to their ancestors' aggregates). The result is
// published as snapshot version 1.
func Materialize(ds *Dataset, dims []string, workers int) (*Materialized, error) {
	idx, err := ds.resolveDims(dims)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = 8
	}
	set := results.NewSet()
	rep, err := exp.PrecomputeLeaf(core.Run{
		Rel:     ds.rel,
		Dims:    idx,
		Cond:    agg.MinSupport(1),
		Workers: workers,
		Sink:    set,
		Seed:    1,
	})
	if err != nil {
		return nil, err
	}
	attrs := make([]string, len(idx))
	pos := make(map[string]int, len(idx))
	cards := make([]int, len(idx))
	ext := make([]extDim, len(idx))
	for i, d := range idx {
		attrs[i] = ds.rel.Name(d)
		pos[attrs[i]] = i
		cards[i] = ds.rel.Card(d)
		ext[i] = extDim{base: cards[i], codes: make(map[string]uint32)}
	}
	var fullMask lattice.Mask
	for p := range idx {
		fullMask |= 1 << uint(p)
	}
	keys, states := set.CuboidColumns(fullMask)
	leaf := &serve.Cuboid{Mask: fullMask, Width: len(idx), Keys: keys, States: states}

	// The raw rows, projected onto the materialized dimensions, back the
	// write path: exact re-derivation of non-retractable cells and
	// delete validation.
	n := ds.rel.Len()
	rowKeys := make([]uint32, 0, n*len(idx))
	meas := make([]float64, n)
	for row := 0; row < n; row++ {
		for _, d := range idx {
			rowKeys = append(rowKeys, ds.rel.Value(d, row))
		}
		meas[row] = ds.rel.Measure(row)
	}

	return &Materialized{
		ds:                ds,
		dims:              idx,
		attrs:             attrs,
		pos:               pos,
		cube:              ingest.New(leaf, rowKeys, meas, cards, 0),
		ext:               ext,
		PrecomputeSeconds: rep.Makespan,
	}, nil
}

// SetCacheBudget resizes the serving cache's byte budget (≤ 0 restores
// the default) for the current and all future snapshots, evicting
// least-recently-used cuboids until the resident set fits. The leaf is
// pinned outside the budget.
func (m *Materialized) SetCacheBudget(bytes int64) { m.cube.SetBudget(bytes) }

// ResetCache drops every cached cuboid of the current snapshot (the leaf
// stays resident).
func (m *Materialized) ResetCache() { m.cube.Current().Srv.Reset() }

// CacheMetrics returns the serving layer's cumulative counters, summed
// across snapshots (see the type's doc).
func (m *Materialized) CacheMetrics() CacheMetrics {
	var out CacheMetrics
	views := m.cube.Views()
	for _, v := range views {
		s := v.Srv.Stats()
		out.Queries += s.Queries
		out.CacheHits += s.CacheHits
		out.Coalesced += s.Coalesced
		out.Canceled += s.Canceled
		out.LeafAggregations += s.LeafAggregations
		out.AncestorAggregations += s.AncestorAggregations
		out.Evictions += s.Evictions
		out.BackgroundFills += s.BackgroundFills
		out.BackgroundAdmitted += s.BackgroundAdmitted
		out.Replans += s.Replans
	}
	cur := views[len(views)-1].Srv.Stats()
	out.ResidentBytes = cur.ResidentBytes
	out.ResidentCuboids = cur.ResidentCuboids
	out.BudgetBytes = cur.BudgetBytes
	out.Policy = cur.Policy
	return out
}

// RetainSnapshots drops all but the newest keep committed versions
// (minimum 1) and returns how many were released — the snapshot-
// expiration knob for long-running writers. Dropped versions stop
// resolving through AnswerAt.
func (m *Materialized) RetainSnapshots(keep int) int { return m.cube.Retain(keep) }

// Version returns the current snapshot version.
func (m *Materialized) Version() uint64 { return m.cube.Current().Version }

// Snapshots returns the metadata of every retained version, ascending.
func (m *Materialized) Snapshots() []Snapshot {
	snaps := m.cube.Snapshots()
	out := make([]Snapshot, len(snaps))
	for i, s := range snaps {
		out[i] = publicSnapshot(s)
	}
	return out
}

// Append batches rows into the pending delta: one string value per
// materialized dimension plus a measure per row, exactly like FromRows.
// Values never seen before extend the dictionary (for synthetic data
// sets, values must be the decimal code strings Answer returns). Nothing
// is visible to queries until Commit.
func (m *Materialized) Append(rows [][]string, measures []float64) error {
	keys, added, err := m.encodeRows(rows, measures, true)
	if err != nil {
		return err
	}
	// On a durable cube, new dictionary entries must be in the log before
	// the batch that uses their codes, so recovery can decode them.
	for _, e := range added {
		if err := m.cube.LogAux(encodeDictExt(e.pos, e.code, e.val)); err != nil {
			return err
		}
	}
	return m.cube.Append(keys, measures)
}

// Delete batches row deletions into the pending delta. Every row must
// match a live (not yet deleted) tuple — same dimension values, same
// measure — at the current version or appended earlier in this batch;
// otherwise Delete fails and leaves the batch untouched. Nothing is
// visible to queries until Commit.
func (m *Materialized) Delete(rows [][]string, measures []float64) error {
	keys, _, err := m.encodeRows(rows, measures, false)
	if err != nil {
		return err
	}
	return m.cube.Delete(keys, measures)
}

// Commit folds the pending Append/Delete batch into the leaf and every
// resident cuboid, and publishes the result as a new immutable snapshot.
// In-flight readers keep the version they started on; queries issued
// after Commit returns see the new one. An empty batch still advances
// the version.
func (m *Materialized) Commit() (Snapshot, error) {
	s, err := m.cube.Commit()
	if err != nil {
		return Snapshot{}, err
	}
	return publicSnapshot(s), nil
}

// dictExt records one dictionary extension made while encoding a batch.
type dictExt struct {
	pos  int
	code uint32
	val  string
}

// encodeRows dictionary-encodes string rows for the write path. extend
// assigns fresh codes to unseen values (Append); without it an unseen
// value is an error (Delete — the row cannot be live). The returned
// extensions are the entries this batch added, in assignment order.
func (m *Materialized) encodeRows(rows [][]string, measures []float64, extend bool) ([]uint32, []dictExt, error) {
	if len(rows) != len(measures) {
		return nil, nil, fmt.Errorf("icebergcube: %d rows but %d measures", len(rows), len(measures))
	}
	keys := make([]uint32, 0, len(rows)*len(m.dims))
	var added []dictExt
	for i, row := range rows {
		if len(row) != len(m.dims) {
			return nil, nil, fmt.Errorf("icebergcube: row %d has %d values, want %d", i, len(row), len(m.dims))
		}
		for p, v := range row {
			code, fresh, err := m.encodeValue(p, v, extend)
			if err != nil {
				return nil, nil, err
			}
			if fresh {
				added = append(added, dictExt{pos: p, code: code, val: v})
			}
			keys = append(keys, code)
		}
	}
	return keys, added, nil
}

// encodeValue maps one dimension value to its code, consulting the
// dataset dictionary first, then the extension layer. fresh reports the
// code was assigned by this call.
func (m *Materialized) encodeValue(p int, v string, extend bool) (code uint32, fresh bool, err error) {
	if m.ds.dict != nil {
		if c, ok := m.ds.dict.Encoders[m.dims[p]].Lookup(v); ok {
			return c, false, nil
		}
		m.extMu.Lock()
		defer m.extMu.Unlock()
		e := &m.ext[p]
		if c, ok := e.codes[v]; ok {
			return c, false, nil
		}
		if !extend {
			return 0, false, fmt.Errorf("icebergcube: unknown value %q for dimension %q", v, m.attrs[p])
		}
		c := uint32(e.base + len(e.values))
		e.codes[v] = c
		e.values = append(e.values, v)
		return c, true, nil
	}
	// Synthetic data sets have no dictionary: values are the canonical
	// decimal code strings Answer produces.
	n, perr := strconv.ParseUint(v, 10, 32)
	if perr != nil || strconv.FormatUint(n, 10) != v {
		return 0, false, fmt.Errorf("icebergcube: synthetic dimension %q needs a decimal code value, got %q", m.attrs[p], v)
	}
	return uint32(n), false, nil
}

// decodeValue renders one materialized dimension's code: the dataset
// dictionary for base codes, the extension layer for appended values.
func (m *Materialized) decodeValue(p int, code uint32) string {
	if m.ds.dict == nil || int(code) < m.ext[p].base {
		return m.ds.decode(m.dims[p], code)
	}
	m.extMu.RLock()
	defer m.extMu.RUnlock()
	return m.ext[p].values[int(code)-m.ext[p].base]
}

// resolveGroupBy maps groupBy names to ascending materialized positions
// and the cuboid mask, rejecting unknown and duplicate attributes.
func (m *Materialized) resolveGroupBy(groupBy []string) ([]int, lattice.Mask, error) {
	var mask lattice.Mask
	for _, name := range groupBy {
		p, ok := m.pos[name]
		if !ok {
			return nil, 0, fmt.Errorf("icebergcube: %q is not a materialized dimension", name)
		}
		if mask.Has(p) {
			return nil, 0, fmt.Errorf("icebergcube: duplicate group-by attribute %q", name)
		}
		mask |= 1 << uint(p)
	}
	return mask.Dims(), mask, nil
}

// Answer computes one iceberg group-by from the materialized cuboid at
// the current snapshot: SELECT groupBy..., aggregates HAVING COUNT(*) >=
// minSupport, for any threshold — the minsup-1 leaf loses nothing.
// groupBy must be a duplicate-free subset of the materialized dimensions.
// Cells come back in ascending value-tuple order, the same order
// Result.Cuboid uses.
func (m *Materialized) Answer(groupBy []string, minSupport int64) ([]Cell, error) {
	cells, _, err := m.AnswerStats(groupBy, minSupport)
	return cells, err
}

// AnswerStats is Answer plus serving observability: which resident cuboid
// answered, whether it was a cache hit, and how many cells were scanned.
func (m *Materialized) AnswerStats(groupBy []string, minSupport int64) ([]Cell, ServeStats, error) {
	return m.answerView(context.Background(), m.cube.Current(), groupBy, minSupport)
}

// AnswerCtx is Answer with caller cancellation: a cancelled context stops
// the query before it starts (or blocks on) a cuboid derivation — the
// network front-end plumbs each connection's context down here so
// abandoned clients stop burning aggregation work.
func (m *Materialized) AnswerCtx(ctx context.Context, groupBy []string, minSupport int64) ([]Cell, error) {
	cells, _, err := m.AnswerStatsCtx(ctx, groupBy, minSupport)
	return cells, err
}

// AnswerStatsCtx is AnswerCtx plus serving observability.
func (m *Materialized) AnswerStatsCtx(ctx context.Context, groupBy []string, minSupport int64) ([]Cell, ServeStats, error) {
	return m.answerView(ctx, m.cube.Current(), groupBy, minSupport)
}

// AnswerEach streams the qualifying cells of one group-by to yield, one
// at a time in ascending value-tuple order, without materializing the
// []Cell slice — the network front-end uses it to chunk large cuboids
// straight onto the wire. A non-nil error from yield aborts the
// iteration and is returned verbatim. The returned stats are the same as
// AnswerStats.
func (m *Materialized) AnswerEach(ctx context.Context, groupBy []string, minSupport int64, yield func(Cell) error) (ServeStats, error) {
	return m.answerViewEach(ctx, m.cube.Current(), groupBy, minSupport, yield)
}

// AnswerAt is Answer pinned to a committed snapshot version — the
// time-travel read path. The answer is exactly what Answer returned (or
// would have returned) while that version was current.
func (m *Materialized) AnswerAt(version uint64, groupBy []string, minSupport int64) ([]Cell, error) {
	cells, _, err := m.AnswerStatsAt(version, groupBy, minSupport)
	return cells, err
}

// AnswerStatsAt is AnswerAt plus serving observability.
func (m *Materialized) AnswerStatsAt(version uint64, groupBy []string, minSupport int64) ([]Cell, ServeStats, error) {
	v, ok := m.cube.At(version)
	if !ok {
		return nil, ServeStats{}, fmt.Errorf("icebergcube: unknown snapshot version %d", version)
	}
	return m.answerView(context.Background(), v, groupBy, minSupport)
}

// answerView serves one group-by from one pinned snapshot.
func (m *Materialized) answerView(ctx context.Context, v *ingest.View, groupBy []string, minSupport int64) ([]Cell, ServeStats, error) {
	cells := []Cell{}
	stats, err := m.answerViewEach(ctx, v, groupBy, minSupport, func(c Cell) error {
		cells = append(cells, c)
		return nil
	})
	if err != nil {
		return nil, ServeStats{}, err
	}
	return cells, stats, nil
}

// answerViewEach serves one group-by from one pinned snapshot, streaming
// qualifying cells to yield instead of accumulating them.
func (m *Materialized) answerViewEach(ctx context.Context, v *ingest.View, groupBy []string, minSupport int64, yield func(Cell) error) (ServeStats, error) {
	if minSupport < 1 {
		minSupport = 1
	}
	order, mask, err := m.resolveGroupBy(groupBy)
	if err != nil {
		return ServeStats{}, err
	}
	cub, qs, err := v.Srv.QueryCtx(ctx, mask)
	if err != nil {
		return ServeStats{}, err
	}
	attrs := make([]string, len(order))
	for i, p := range order {
		attrs[i] = m.attrs[p]
	}
	stats := ServeStats{
		ServedFrom:   m.maskAttrs(qs.ServedFrom),
		CacheHit:     qs.CacheHit,
		Coalesced:    qs.Coalesced,
		CellsScanned: qs.CellsScanned,
		Admitted:     qs.Admitted,
		Version:      v.Version,
	}
	cond := agg.MinSupport(minSupport)
	for i := 0; i < cub.Rows(); i++ {
		st := cub.States[i]
		if !cond.Holds(st) {
			continue
		}
		values := make([]string, len(order))
		if cub.Width > 0 {
			for j, c := range cub.Row(i) {
				values[j] = m.decodeValue(order[j], c)
			}
		}
		cell := Cell{
			Attrs:  attrs,
			Values: values,
			Count:  st.Count,
			Sum:    st.Value(agg.Sum),
			Min:    st.Value(agg.Min),
			Max:    st.Value(agg.Max),
			Avg:    st.Value(agg.Avg),
		}
		if err := yield(cell); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// maskAttrs renders a serving mask as attribute names.
func (m *Materialized) maskAttrs(mask lattice.Mask) []string {
	dims := mask.Dims()
	names := make([]string, len(dims))
	for i, p := range dims {
		names[i] = m.attrs[p]
	}
	return names
}

// invalidate drops one group-by from the current snapshot's serving
// cache; benchmarks use it to measure the miss path repeatedly.
func (m *Materialized) invalidate(groupBy []string) error {
	_, mask, err := m.resolveGroupBy(groupBy)
	if err != nil {
		return err
	}
	m.cube.Current().Srv.Invalidate(mask)
	return nil
}

// answerLeafRescan is the pre-serving-layer Answer: rescan every cell of
// the current snapshot's leaf through a string-keyed map, whatever the
// query shape. It is kept as the differential reference the oracle suite
// and the serving benchmarks compare against.
func (m *Materialized) answerLeafRescan(groupBy []string, minSupport int64) ([]Cell, error) {
	if minSupport < 1 {
		minSupport = 1
	}
	order, _, err := m.resolveGroupBy(groupBy)
	if err != nil {
		return nil, err
	}
	attrs := make([]string, len(order))
	for i, p := range order {
		attrs[i] = m.attrs[p]
	}

	// Aggregate the leaf cuboid's cells onto the requested attributes.
	leaf := m.cube.Current().Srv.Leaf()
	groups := make(map[string]agg.State)
	for i := 0; i < leaf.Rows(); i++ {
		key := leaf.Row(i)
		sub := make([]byte, 4*len(order))
		for j, p := range order {
			v := key[p]
			sub[4*j] = byte(v)
			sub[4*j+1] = byte(v >> 8)
			sub[4*j+2] = byte(v >> 16)
			sub[4*j+3] = byte(v >> 24)
		}
		g, ok := groups[string(sub)]
		if !ok {
			g = agg.NewState()
		}
		g.Merge(leaf.States[i])
		groups[string(sub)] = g
	}

	keys := make([][]uint32, 0, len(groups))
	for k := range groups {
		keys = append(keys, results.DecodeKey(k))
	}
	sort.Slice(keys, func(a, b int) bool { return results.CompareTuples(keys[a], keys[b]) < 0 })
	cond := agg.MinSupport(minSupport)
	cells := make([]Cell, 0, len(keys))
	for _, codes := range keys {
		buf := make([]byte, 4*len(codes))
		for i, v := range codes {
			buf[4*i] = byte(v)
			buf[4*i+1] = byte(v >> 8)
			buf[4*i+2] = byte(v >> 16)
			buf[4*i+3] = byte(v >> 24)
		}
		st := groups[string(buf)]
		if !cond.Holds(st) {
			continue
		}
		values := make([]string, len(codes))
		for i, c := range codes {
			values[i] = m.decodeValue(order[i], c)
		}
		cells = append(cells, Cell{
			Attrs:  attrs,
			Values: values,
			Count:  st.Count,
			Sum:    st.Value(agg.Sum),
			Min:    st.Value(agg.Min),
			Max:    st.Value(agg.Max),
			Avg:    st.Value(agg.Avg),
		})
	}
	return cells, nil
}

// NumCells returns the current snapshot's leaf cell count.
func (m *Materialized) NumCells() int { return m.cube.Current().Srv.Leaf().Rows() }

// Attrs returns the materialized dimension names in cube order — the
// same contract as ColdCube.Attrs.
func (m *Materialized) Attrs() []string { return append([]string(nil), m.attrs...) }
