package icebergcube

import "testing"

// TestMaterializedAnswersMatchCompute: every group-by answered from the
// §5.1 leaf precomputation equals the full cube's cuboid — at thresholds
// above, equal to, and below typical precompute floors.
func TestMaterializedAnswersMatchCompute(t *testing.T) {
	ds := Synthetic([]string{"A", "B", "C", "D"}, []int{7, 5, 4, 3}, []float64{2, 1, 1.5, 1}, 1500, 13)
	mat, err := Materialize(ds, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, minsup := range []int64{1, 2, 6} {
		full, err := Compute(ds, Query{MinSupport: minsup, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		for _, groupBy := range [][]string{
			{"A"}, {"B", "D"}, {"A", "B", "C"}, {"A", "B", "C", "D"},
		} {
			got, err := mat.Answer(groupBy, minsup)
			if err != nil {
				t.Fatal(err)
			}
			want, err := full.Cuboid(groupBy...)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("minsup=%d %v: %d cells from materialization, %d from the cube", minsup, groupBy, len(got), len(want))
			}
			for i := range want {
				if got[i].Count != want[i].Count || got[i].Sum != want[i].Sum {
					t.Fatalf("minsup=%d %v: cell %d differs: %+v vs %+v", minsup, groupBy, i, got[i], want[i])
				}
			}
		}
	}
}

// TestMaterializedIsPrecomputedOnce: answering is served from memory (the
// cell count equals the distinct finest-group count) and the precompute
// time is reported.
func TestMaterializedIsPrecomputedOnce(t *testing.T) {
	ds := Synthetic([]string{"A", "B"}, []int{4, 3}, nil, 300, 1)
	mat, err := Materialize(ds, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mat.NumCells() == 0 || mat.NumCells() > 12 {
		t.Fatalf("leaf cuboid has %d cells, want ≤ 4×3", mat.NumCells())
	}
	if mat.PrecomputeSeconds <= 0 {
		t.Fatal("no precompute time reported")
	}
}

// TestMaterializedErrors covers unknown dimensions.
func TestMaterializedErrors(t *testing.T) {
	ds := Synthetic([]string{"A", "B"}, []int{4, 3}, nil, 100, 1)
	if _, err := Materialize(ds, []string{"Nope"}, 2); err == nil {
		t.Fatal("unknown dimension accepted")
	}
	mat, err := Materialize(ds, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mat.Answer([]string{"Nope"}, 1); err == nil {
		t.Fatal("unknown group-by attribute accepted")
	}
}
