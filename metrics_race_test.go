package icebergcube

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"icebergcube/internal/wal"
)

// Metrics readers run concurrently with query and commit traffic in any
// real deployment (a scraper hitting /v1/metrics while the cube serves).
// These tests hammer the public metrics surfaces from dedicated reader
// goroutines while queries and commits run, under -race, and assert the
// cumulative counters only ever move forward — a torn or double-counted
// read would show up as a counter going backwards.

func raceFixture(t *testing.T) *Materialized {
	t.Helper()
	var rows [][]string
	var meas []float64
	for i := 0; i < 400; i++ {
		rows = append(rows, []string{
			fmt.Sprintf("a%d", i%7), fmt.Sprintf("b%d", i%5), fmt.Sprintf("c%d", i%3),
		})
		meas = append(meas, float64(i))
	}
	ds, err := FromRows([]string{"A", "B", "C"}, rows, meas)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Materialize(ds, []string{"A", "B", "C"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// monotone tracks the last observation of a few counters and fails if
// any of them decreases.
type monotone struct {
	t    *testing.T
	name string
	last map[string]int64
}

func (mo *monotone) observe(vals map[string]int64) {
	if mo.last == nil {
		mo.last = map[string]int64{}
	}
	for k, v := range vals {
		if v < mo.last[k] {
			mo.t.Errorf("%s: counter %s went backwards: %d -> %d", mo.name, k, mo.last[k], v)
			return
		}
		mo.last[k] = v
	}
}

// TestCacheMetricsConcurrentReaders: CacheMetrics and CuboidStats read
// while queries hit the cache and a writer appends and commits new
// snapshots. Traffic counters must be monotone across the commit
// handoffs (a commit swaps serving state but must not reset
// observability).
func TestCacheMetricsConcurrentReaders(t *testing.T) {
	m := raceFixture(t)
	groupBys := [][]string{{"A"}, {"B"}, {"C"}, {"A", "B"}, {"B", "C"}, {"A", "C"}, {"A", "B", "C"}, nil}

	var stop atomic.Bool
	var workers, readers sync.WaitGroup

	// Query workers.
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for !stop.Load() {
				gb := groupBys[rng.Intn(len(groupBys))]
				if _, err := m.Answer(gb, 1+int64(rng.Intn(3))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	// Writer: append + commit in a loop.
	workers.Add(1)
	go func() {
		defer workers.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 30 && !stop.Load(); i++ {
			row := []string{
				fmt.Sprintf("a%d", rng.Intn(7)), fmt.Sprintf("b%d", rng.Intn(5)), fmt.Sprintf("c%d", rng.Intn(3)),
			}
			if err := m.Append([][]string{row}, []float64{float64(i)}); err != nil {
				t.Error(err)
				return
			}
			if _, err := m.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Metrics readers: hammer every public observability surface.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			mo := &monotone{t: t, name: fmt.Sprintf("reader-%d", r)}
			for i := 0; i < 3000; i++ {
				cm := m.CacheMetrics()
				mo.observe(map[string]int64{
					"queries":   cm.Queries,
					"hits":      cm.CacheHits,
					"coalesced": cm.Coalesced,
					"canceled":  cm.Canceled,
					"computes":  cm.LeafAggregations + cm.AncestorAggregations,
					"evictions": cm.Evictions,
				})
				if cm.ResidentBytes > cm.BudgetBytes {
					t.Errorf("reader-%d: resident %d over budget %d", r, cm.ResidentBytes, cm.BudgetBytes)
					return
				}
				for _, cs := range m.CuboidStats() {
					if cs.Hits < 0 || cs.Misses < 0 || cs.Bytes < 0 {
						t.Errorf("reader-%d: negative cuboid stat %+v", r, cs)
						return
					}
				}
			}
		}(r)
	}

	readers.Wait() // readers finish their fixed iteration budget
	stop.Store(true)
	workers.Wait()

	cm := m.CacheMetrics()
	if cm.Queries == 0 || cm.LeafAggregations+cm.AncestorAggregations == 0 {
		t.Fatalf("no traffic recorded under load: %+v", cm)
	}
}

// TestColdMetricsConcurrentReaders: ColdCube.Metrics read while cold
// queries scan the segment table; counters monotone, I/O stats sane.
func TestColdMetricsConcurrentReaders(t *testing.T) {
	m := raceFixture(t)
	fsys := wal.NewMemFS()
	if err := m.FlushSegmentsFS(fsys, "cube"); err != nil {
		t.Fatal(err)
	}
	// A small budget keeps eviction pressure on, so cold scans keep
	// happening instead of everything going resident.
	cold, err := OpenColdFS(fsys, "cube", 4096)
	if err != nil {
		t.Fatal(err)
	}
	groupBys := [][]string{{"A"}, {"B"}, {"C"}, {"A", "B"}, {"B", "C"}, {"A", "B", "C"}}

	var stop atomic.Bool
	var workers, readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			rng := rand.New(rand.NewSource(int64(w) * 31))
			for !stop.Load() {
				gb := groupBys[rng.Intn(len(groupBys))]
				if _, err := cold.Answer(gb, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			mo := &monotone{t: t, name: fmt.Sprintf("cold-reader-%d", r)}
			for i := 0; i < 3000; i++ {
				cm := cold.Metrics()
				mo.observe(map[string]int64{
					"queries":   cm.Queries,
					"hits":      cm.CacheHits,
					"coalesced": cm.Coalesced,
					"canceled":  cm.Canceled,
					"coldscans": cm.ColdScans,
					"rows":      cm.RowsScanned,
					"io-reads":  cm.IO.ReadCalls,
					"io-bytes":  cm.IO.BytesRead,
				})
				if cm.ResidentBytes > cm.BudgetBytes {
					t.Errorf("cold-reader-%d: resident %d over budget %d", r, cm.ResidentBytes, cm.BudgetBytes)
					return
				}
			}
		}(r)
	}
	readers.Wait()
	stop.Store(true)
	workers.Wait()

	cm := cold.Metrics()
	if cm.Queries == 0 || cm.ColdScans == 0 {
		t.Fatalf("no cold traffic recorded under load: %+v", cm)
	}
}
