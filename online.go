package icebergcube

import (
	"fmt"
	"sort"

	"icebergcube/internal/agg"
	"icebergcube/internal/online"
	"icebergcube/internal/results"
)

// OnlineQuery describes one online iceberg group-by (Chapter 5): a single
// GROUP BY over a data set treated as too large for memory, answered
// instantly and refined as blocks stream in.
type OnlineQuery struct {
	// Dims names the GROUP BY attributes (must be non-empty).
	Dims []string
	// MinSupport is the iceberg threshold (default 1).
	MinSupport int64
	// Workers is the cluster size (default 8).
	Workers int
	// BufferTuples is the per-processor block size per synchronized step
	// (default 8000, the paper's setting).
	BufferTuples int
	// Seed fixes sampling and skip-list coins.
	Seed int64
	// OnProgress, if set, receives a refinement snapshot after every
	// step.
	OnProgress func(OnlineProgress)
}

// OnlineProgress is one progressive answer.
type OnlineProgress struct {
	// Step counts synchronized steps; Fraction is the share of the data
	// processed.
	Step     int
	Fraction float64
	// Cells is the number of distinct cells seen so far;
	// QualifyingCells of those, the cells whose scaled running estimate
	// already passes the threshold.
	Cells           int
	QualifyingCells int
	// VirtualSeconds is the simulated elapsed time.
	VirtualSeconds float64
}

// OnlineResult is the completed exact answer.
type OnlineResult struct {
	// Cells are the qualifying cells of the group-by, sorted by values.
	Cells []Cell
	// Makespan is the simulated completion time; Steps the number of
	// synchronized steps taken.
	Makespan float64
	Steps    int
}

// ComputeOnline runs POL to completion.
func ComputeOnline(ds *Dataset, q OnlineQuery) (*OnlineResult, error) {
	if len(q.Dims) == 0 {
		return nil, fmt.Errorf("icebergcube: OnlineQuery.Dims must name at least one attribute")
	}
	dims, err := ds.resolveDims(q.Dims)
	if err != nil {
		return nil, err
	}
	if q.MinSupport <= 0 {
		q.MinSupport = 1
	}
	if q.Workers <= 0 {
		q.Workers = 8
	}
	var progress func(online.Snapshot)
	if q.OnProgress != nil {
		progress = func(s online.Snapshot) {
			q.OnProgress(OnlineProgress{
				Step:            s.Step,
				Fraction:        s.Fraction,
				Cells:           s.Cells,
				QualifyingCells: s.QualifyingCells,
				VirtualSeconds:  s.VirtualSeconds,
			})
		}
	}
	res, err := online.Run(online.Query{
		Rel:          ds.rel,
		Dims:         dims,
		Cond:         agg.MinSupport(q.MinSupport),
		Workers:      q.Workers,
		BufferTuples: q.BufferTuples,
		Seed:         q.Seed,
		Progress:     progress,
	})
	if err != nil {
		return nil, err
	}
	attrs := make([]string, len(dims))
	for i, d := range dims {
		attrs[i] = ds.rel.Name(d)
	}
	raw := res.Cells.Cuboid(res.Mask)
	keys := make([]string, 0, len(raw))
	for k := range raw {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	cells := make([]Cell, 0, len(keys))
	for _, k := range keys {
		st := raw[k]
		codes := results.DecodeKey(k)
		values := make([]string, len(codes))
		for i, c := range codes {
			values[i] = ds.decode(dims[i], c)
		}
		cells = append(cells, Cell{
			Attrs:  attrs,
			Values: values,
			Count:  st.Count,
			Sum:    st.Value(agg.Sum),
			Min:    st.Value(agg.Min),
			Max:    st.Value(agg.Max),
			Avg:    st.Value(agg.Avg),
		})
	}
	return &OnlineResult{Cells: cells, Makespan: res.Makespan, Steps: res.Steps}, nil
}
