package icebergcube

import "math"

// Profile describes the cube a user is about to compute, in the terms the
// paper's recipe (Fig 4.7) is expressed in.
type Profile struct {
	// Tuples is the data-set size.
	Tuples int
	// Dims is the number of cube dimensions.
	Dims int
	// CardinalityProduct is the product of the cube dimensions'
	// cardinalities — the total number of possible cells. Use
	// ProfileOf to derive it from a Dataset.
	CardinalityProduct float64
	// MemoryConstrained marks nodes that cannot hold a full replica of
	// the data set.
	MemoryConstrained bool
	// OnlineRefinement marks queries that need instant answers with
	// progressive refinement (Chapter 5).
	OnlineRefinement bool
}

// Dense reports whether the cube counts as dense for the recipe: the total
// number of possible cells is not too high (the paper uses < 10^8).
func (p Profile) Dense() bool {
	return p.CardinalityProduct > 0 && p.CardinalityProduct < 1e8
}

// Recommendation is the recipe's answer.
type Recommendation struct {
	// Algorithm to use; Online is set instead when the profile asks for
	// online refinement (use ComputeOnline/POL).
	Algorithm Algorithm
	Online    bool
	// Reason explains the choice in the paper's terms.
	Reason string
	// Alternatives lists other reasonable picks, best first. The slice is
	// shared across calls — treat it as read-only.
	Alternatives []Algorithm
}

// Shared alternative lists: Recommend is called per query in recommendation
// services, and a fresh slice per call was its only allocation. Callers
// must treat Recommendation.Alternatives as read-only.
var (
	altOnline  = []Algorithm{ASL}
	altMemory  = []Algorithm{PT}
	altDense   = []Algorithm{ASL, PT}
	altSmall   = []Algorithm{PT, ASL, AHT}
	altHighDim = []Algorithm{BPP}
	altDefault = []Algorithm{ASL, AHT}
)

// Recommend implements the paper's recipe (Fig 4.7, §4.9.1): PT is the
// default; ASL and AHT dominate on dense cubes (AHT degrades first as
// sparseness or dimensionality grows); with ≤5 dimensions almost everything
// ties and RP's simplicity wins; BPP is the pick under memory pressure;
// high dimensionality demands PT; online refinement needs the
// skip-list-based POL.
func Recommend(p Profile) Recommendation {
	switch {
	case p.OnlineRefinement:
		return Recommendation{
			Online: true, Algorithm: ASL,
			Reason:       "online support: POL (skip-list based, sampling + progressive refinement) answers while scanning; of the CUBE algorithms only ASL extends to it",
			Alternatives: altOnline,
		}
	case p.MemoryConstrained:
		return Recommendation{
			Algorithm:    BPP,
			Reason:       "less memory occupation: BPP partitions the data set instead of replicating it; each node only holds its chunks",
			Alternatives: altMemory,
		}
	case p.Dense():
		return Recommendation{
			Algorithm:    AHT,
			Reason:       "dense cube (cardinality product < 10^8): AHT and ASL dominate — little pruning is available to the BUC-based algorithms and hash/skip-list stores stay compact",
			Alternatives: altDense,
		}
	case p.Dims > 0 && p.Dims <= 5:
		return Recommendation{
			Algorithm:    RP,
			Reason:       "small dimensionality (≤5): all algorithms behave similarly and RP is the simplest to run",
			Alternatives: altSmall,
		}
	case p.Dims >= 11:
		return Recommendation{
			Algorithm:    PT,
			Reason:       "high dimensionality: PT's pruning plus balanced binary-division tasks; ASL's long-key comparisons and AHT's starved index bits both degrade",
			Alternatives: altHighDim,
		}
	default:
		return Recommendation{
			Algorithm:    PT,
			Reason:       "default: PT combines bottom-up pruning with top-down affinity scheduling and is typically a constant factor faster than ASL and AHT",
			Alternatives: altDefault,
		}
	}
}

// ProfileOf derives a Profile from a data set and an intended dimension
// list (nil = all dimensions).
func ProfileOf(ds *Dataset, dims []string) (Profile, error) {
	idx, err := ds.resolveDims(dims)
	if err != nil {
		return Profile{}, err
	}
	logProd := 0.0
	for _, d := range idx {
		logProd += math.Log10(float64(ds.rel.Card(d)))
	}
	prod := math.Inf(1)
	if logProd < 300 {
		prod = math.Pow(10, logProd)
	}
	return Profile{
		Tuples:             ds.Len(),
		Dims:               len(idx),
		CardinalityProduct: prod,
	}, nil
}
