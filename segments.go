package icebergcube

import (
	"context"
	"fmt"
	"path"
	"sync"

	"icebergcube/internal/agg"
	"icebergcube/internal/core"
	"icebergcube/internal/lattice"
	"icebergcube/internal/relation"
	"icebergcube/internal/results"
	"icebergcube/internal/segment"
	"icebergcube/internal/serve"
	"icebergcube/internal/wal"
)

// FlushSegments persists the current committed snapshot's live rows as a
// dictionary-encoded columnar segment table in dir (which must not
// already hold one). The flush carries the full decode state — dimension
// names, code cardinalities and dictionaries, including values appended
// after materialization — so OpenSegments and OpenCold reproduce Answer's
// output byte for byte.
func (m *Materialized) FlushSegments(dir string) error {
	return m.FlushSegmentsFS(wal.DirFS{}, dir)
}

// FlushSegmentsFS is FlushSegments over an explicit filesystem (tests use
// wal.NewMemFS).
func (m *Materialized) FlushSegmentsFS(fsys wal.FS, dir string) error {
	keys, meas := m.cube.LiveRows()
	w := len(m.dims)

	// Effective code space per position: the base dictionary plus the
	// extension layer. Synthetic data sets accept arbitrary decimal codes
	// on Append, so widen by anything actually observed.
	m.extMu.RLock()
	cards := make([]int, w)
	for p := range cards {
		cards[p] = m.ext[p].base + len(m.ext[p].values)
	}
	var dicts [][]string
	if m.ds.dict != nil {
		dicts = make([][]string, w)
		for p := range dicts {
			base := m.ds.dict.Encoders[m.dims[p]].Values()[:m.ext[p].base]
			dicts[p] = append(append([]string(nil), base...), m.ext[p].values...)
		}
	}
	m.extMu.RUnlock()
	for i, code := range keys {
		if p := i % w; int(code) >= cards[p] {
			if dicts != nil {
				return fmt.Errorf("icebergcube: code %d beyond dictionary of %q", code, m.attrs[p])
			}
			cards[p] = int(code) + 1
		}
	}

	sw, err := segment.Create(fsys, dir, segment.Schema{Names: m.attrs, Cards: cards, Dicts: dicts}, segment.Options{})
	if err != nil {
		return err
	}
	row := make([]uint32, w)
	for i := range meas {
		copy(row, keys[i*w:(i+1)*w])
		if err := sw.Append(row, meas[i]); err != nil {
			return err
		}
	}
	return sw.Close()
}

// OpenSegments loads a segment table back into memory as a Dataset —
// the warm path for data that fits. Dictionaries persisted by
// FlushSegments are restored, so decoded values round-trip exactly.
func OpenSegments(dir string) (*Dataset, error) {
	return OpenSegmentsFS(wal.DirFS{}, dir)
}

// OpenSegmentsFS is OpenSegments over an explicit filesystem.
func OpenSegmentsFS(fsys wal.FS, dir string) (*Dataset, error) {
	tab, err := segment.Open(fsys, dir)
	if err != nil {
		return nil, err
	}
	rel := relation.NewWithCapacity(tab.Names(), tab.Cards(), int(tab.Rows()))
	err = tab.Scan(segment.ScanOptions{Meas: true}, func(ch *segment.Chunk) error {
		rel.AppendColumns(ch.Cols, ch.Meas)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return newDataset(rel, dictFromTable(tab)), nil
}

// dictFromTable rebuilds the per-dimension encoders from a table's
// persisted dictionaries (nil when the table was written without them —
// synthetic data, whose codes decode as themselves).
func dictFromTable(tab *segment.Table) *relation.Dictionary {
	persisted := tab.Dicts()
	if persisted == nil {
		return nil
	}
	dict := &relation.Dictionary{Encoders: make([]*relation.Encoder, len(persisted))}
	for d, values := range persisted {
		dict.Encoders[d] = relation.NewEncoderFromValues(values)
	}
	return dict
}

// dictOnlyDataset builds a rowless Dataset over a table's schema, used to
// decode cells produced straight from segment scans.
func dictOnlyDataset(tab *segment.Table) *Dataset {
	return newDataset(relation.New(tab.Names(), tab.Cards()), dictFromTable(tab))
}

// coldTable adapts a segment table to the serving layer's ColdSource,
// accumulating measured I/O across scans.
type coldTable struct {
	tab *segment.Table
	mu  sync.Mutex
	io  segment.IOStats
}

func (c *coldTable) Width() int { return len(c.tab.Names()) }
func (c *coldTable) Rows() int  { return int(c.tab.Rows()) }

func (c *coldTable) Scan(dims []int, yield func(cols [][]uint32, meas []float64) error) error {
	var st segment.IOStats
	cols := dims
	if cols == nil {
		cols = []int{}
	}
	dense := make([][]uint32, len(dims))
	err := c.tab.Scan(segment.ScanOptions{Cols: cols, Meas: true, Stats: &st}, func(ch *segment.Chunk) error {
		for i, d := range dims {
			dense[i] = ch.Cols[d]
		}
		return yield(dense, ch.Meas)
	})
	c.mu.Lock()
	c.io.Add(st)
	c.mu.Unlock()
	return err
}

func (c *coldTable) stats() segment.IOStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.io
}

// ColdCube answers group-by queries over a flushed segment table without
// loading the leaf into memory: resident cuboids live in a byte-budgeted
// cache, misses aggregate from the smallest resident ancestor, and only
// when no ancestor covers the query is the cold store streamed — reading
// just the queried columns. Safe for concurrent queries.
type ColdCube struct {
	tab   *segment.Table
	src   *coldTable
	srv   *serve.ColdServer
	ds    *Dataset
	attrs []string
	pos   map[string]int
}

// ColdServeStats reports how one cold-tier Answer was served.
type ColdServeStats struct {
	// ServedFrom names the resident cuboid aggregated on a warm miss (the
	// query's own attributes on a hit or a cold scan).
	ServedFrom []string
	// CacheHit reports the cuboid was resident; Coalesced that the query
	// waited on an identical concurrent miss; ColdScan that the segment
	// store was streamed.
	CacheHit, Coalesced, ColdScan bool
	// RowsScanned counts cold rows streamed (0 unless ColdScan);
	// CellsScanned ancestor cells aggregated (0 unless a warm miss).
	RowsScanned  int64
	CellsScanned int
	// Admitted reports the computed cuboid was retained.
	Admitted bool
}

// ColdCacheMetrics are a ColdCube's cumulative counters, including the
// measured segment I/O behind every cold scan.
type ColdCacheMetrics struct {
	Queries              int64
	CacheHits            int64
	Coalesced            int64
	Canceled             int64
	ColdScans            int64
	AncestorAggregations int64
	RowsScanned          int64
	ResidentBytes        int64
	ResidentCuboids      int
	BudgetBytes          int64
	// IO is the measured read-side cost of all cold scans so far.
	IO SegmentIOStats
}

// SegmentIOStats is the measured (not simulated) read-side cost of
// segment scans: real filesystem calls, bytes and wall seconds.
type SegmentIOStats struct {
	BlocksScanned int64
	BlocksSkipped int64
	ReadCalls     int64
	BytesRead     int64
	ReadSeconds   float64
	RowsScanned   int64
	RowsYielded   int64
}

func publicIOStats(s segment.IOStats) SegmentIOStats {
	return SegmentIOStats{
		BlocksScanned: s.BlocksScanned,
		BlocksSkipped: s.BlocksSkipped,
		ReadCalls:     s.ReadCalls,
		BytesRead:     s.BytesRead,
		ReadSeconds:   s.ReadSeconds,
		RowsScanned:   s.RowsScanned,
		RowsYielded:   s.RowsYielded,
	}
}

// OpenCold opens a flushed segment table for cold serving with a cuboid
// cache of budgetBytes (≤ 0 selects the serving default).
func OpenCold(dir string, budgetBytes int64) (*ColdCube, error) {
	return OpenColdFS(wal.DirFS{}, dir, budgetBytes)
}

// OpenColdFS is OpenCold over an explicit filesystem.
func OpenColdFS(fsys wal.FS, dir string, budgetBytes int64) (*ColdCube, error) {
	tab, err := segment.Open(fsys, dir)
	if err != nil {
		return nil, err
	}
	src := &coldTable{tab: tab}
	srv, err := serve.NewColdServer(src, tab.Cards(), budgetBytes)
	if err != nil {
		return nil, err
	}
	attrs := tab.Names()
	pos := make(map[string]int, len(attrs))
	for i, n := range attrs {
		pos[n] = i
	}
	return &ColdCube{
		tab:   tab,
		src:   src,
		srv:   srv,
		ds:    dictOnlyDataset(tab),
		attrs: append([]string(nil), attrs...),
		pos:   pos,
	}, nil
}

// Attrs returns the table's dimension names.
func (c *ColdCube) Attrs() []string { return append([]string(nil), c.attrs...) }

// Rows returns the table's row count.
func (c *ColdCube) Rows() int64 { return c.tab.Rows() }

// Answer computes one iceberg group-by from the cold tier — the same
// contract as Materialized.Answer, cells in ascending value-tuple order.
func (c *ColdCube) Answer(groupBy []string, minSupport int64) ([]Cell, error) {
	cells, _, err := c.AnswerStats(groupBy, minSupport)
	return cells, err
}

// AnswerStats is Answer plus cold-serving observability.
func (c *ColdCube) AnswerStats(groupBy []string, minSupport int64) ([]Cell, ColdServeStats, error) {
	return c.AnswerStatsCtx(context.Background(), groupBy, minSupport)
}

// AnswerCtx is Answer with caller cancellation: the context is checked
// between the chunks of a cold scan, so an abandoned client stops burning
// disk reads mid-table.
func (c *ColdCube) AnswerCtx(ctx context.Context, groupBy []string, minSupport int64) ([]Cell, error) {
	cells, _, err := c.AnswerStatsCtx(ctx, groupBy, minSupport)
	return cells, err
}

// AnswerStatsCtx is AnswerCtx plus cold-serving observability.
func (c *ColdCube) AnswerStatsCtx(ctx context.Context, groupBy []string, minSupport int64) ([]Cell, ColdServeStats, error) {
	cells := []Cell{}
	stats, err := c.AnswerEach(ctx, groupBy, minSupport, func(cell Cell) error {
		cells = append(cells, cell)
		return nil
	})
	if err != nil {
		return nil, ColdServeStats{}, err
	}
	return cells, stats, nil
}

// AnswerEach streams the qualifying cells of one group-by to yield, one
// at a time in ascending value-tuple order, without materializing the
// []Cell slice — same contract as Materialized.AnswerEach.
func (c *ColdCube) AnswerEach(ctx context.Context, groupBy []string, minSupport int64, yield func(Cell) error) (ColdServeStats, error) {
	if minSupport < 1 {
		minSupport = 1
	}
	var mask lattice.Mask
	for _, name := range groupBy {
		p, ok := c.pos[name]
		if !ok {
			return ColdServeStats{}, fmt.Errorf("icebergcube: %q is not a dimension of this table", name)
		}
		if mask.Has(p) {
			return ColdServeStats{}, fmt.Errorf("icebergcube: duplicate group-by attribute %q", name)
		}
		mask |= 1 << uint(p)
	}
	cub, qs, err := c.srv.QueryCtx(ctx, mask)
	if err != nil {
		return ColdServeStats{}, err
	}
	order := mask.Dims()
	attrs := make([]string, len(order))
	for i, p := range order {
		attrs[i] = c.attrs[p]
	}
	from := qs.ServedFrom.Dims()
	fromAttrs := make([]string, len(from))
	for i, p := range from {
		fromAttrs[i] = c.attrs[p]
	}
	stats := ColdServeStats{
		ServedFrom:   fromAttrs,
		CacheHit:     qs.CacheHit,
		Coalesced:    qs.Coalesced,
		ColdScan:     qs.ColdScan,
		RowsScanned:  qs.RowsScanned,
		CellsScanned: qs.CellsScanned,
		Admitted:     qs.Admitted,
	}
	cond := agg.MinSupport(minSupport)
	for i := 0; i < cub.Rows(); i++ {
		st := cub.States[i]
		if !cond.Holds(st) {
			continue
		}
		values := make([]string, len(order))
		if cub.Width > 0 {
			for j, code := range cub.Row(i) {
				values[j] = c.ds.decode(order[j], code)
			}
		}
		cell := Cell{
			Attrs:  attrs,
			Values: values,
			Count:  st.Count,
			Sum:    st.Value(agg.Sum),
			Min:    st.Value(agg.Min),
			Max:    st.Value(agg.Max),
			Avg:    st.Value(agg.Avg),
		}
		if err := yield(cell); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// ResetCache drops every cached cuboid (the next miss scans cold again).
func (c *ColdCube) ResetCache() { c.srv.Reset() }

// Metrics returns the cumulative cold-serving counters.
func (c *ColdCube) Metrics() ColdCacheMetrics {
	s := c.srv.Stats()
	return ColdCacheMetrics{
		Queries:              s.Queries,
		CacheHits:            s.CacheHits,
		Coalesced:            s.Coalesced,
		Canceled:             s.Canceled,
		ColdScans:            s.ColdScans,
		AncestorAggregations: s.AncestorAggregations,
		RowsScanned:          s.RowsScanned,
		ResidentBytes:        s.ResidentBytes,
		ResidentCuboids:      s.ResidentCuboids,
		BudgetBytes:          s.BudgetBytes,
		IO:                   publicIOStats(c.src.stats()),
	}
}

// OutOfCoreStats reports what one ComputeOutOfCore run did. All I/O
// numbers are measured from real segment reads, not simulated.
type OutOfCoreStats struct {
	// PeakBytes is the high-water mark of accounted resident memory —
	// bounded by the configured limit.
	PeakBytes int64
	// LoadedPartitions, SpilledValues, MaxSpillDepth, PrunedValues and
	// BytesSpilled describe the recursion: partitions small enough to
	// load, heavy values re-spilled to scratch (and how deep), and values
	// discarded at the histogram stage by the iceberg threshold.
	LoadedPartitions int64
	SpilledValues    int64
	MaxSpillDepth    int
	PrunedValues     int64
	BytesSpilled     int64
	// IO is the measured read-side cost across every scan.
	IO SegmentIOStats
}

// ComputeOutOfCore computes an iceberg cube directly over a flushed
// segment table under a resident-memory limit: partitions that fit load
// and run the in-memory kernel; heavy values spill to scratch sub-tables
// and recurse. Only the single-node write orders are available —
// Algorithm BPP selects breadth-first writing, RP (or empty) depth-first
// BUC. Cells are identical to Compute over the same rows.
func ComputeOutOfCore(dir string, q Query, memLimitBytes int64) (*Result, *OutOfCoreStats, error) {
	return ComputeOutOfCoreFS(wal.DirFS{}, dir, q, memLimitBytes)
}

// ComputeOutOfCoreFS is ComputeOutOfCore over an explicit filesystem.
func ComputeOutOfCoreFS(fsys wal.FS, dir string, q Query, memLimitBytes int64) (*Result, *OutOfCoreStats, error) {
	tab, err := segment.Open(fsys, dir)
	if err != nil {
		return nil, nil, err
	}
	var breadth bool
	switch q.Algorithm {
	case BPP:
		breadth = true
	case "", RP:
	default:
		return nil, nil, fmt.Errorf("icebergcube: out-of-core supports RP and BPP, not %q", q.Algorithm)
	}
	names := tab.Names()
	var dims []int
	if q.Dims == nil {
		dims = make([]int, len(names))
		for i := range dims {
			dims[i] = i
		}
	} else {
		colOf := make(map[string]int, len(names))
		for i, n := range names {
			colOf[n] = i
		}
		dims = make([]int, len(q.Dims))
		for i, n := range q.Dims {
			col, ok := colOf[n]
			if !ok {
				return nil, nil, fmt.Errorf("icebergcube: unknown dimension %q", n)
			}
			dims[i] = col
		}
	}
	var cond agg.Condition
	switch {
	case q.MinSum > 0:
		cond = agg.MinSum(q.MinSum)
	case q.MinSupport > 0:
		cond = agg.MinSupport(q.MinSupport)
	default:
		cond = agg.MinSupport(1)
	}

	set := results.NewSet()
	st, err := core.SpillCube(core.SpillConfig{
		Table:      tab,
		Dims:       dims,
		Cond:       cond,
		Out:        set,
		MemBudget:  memLimitBytes,
		Breadth:    breadth,
		FS:         fsys,
		ScratchDir: path.Join(dir, "scratch"),
	})
	if err != nil {
		return nil, nil, err
	}

	ds := dictOnlyDataset(tab)
	attrs := make([]string, len(dims))
	pos := make(map[string]int, len(dims))
	for i, d := range dims {
		attrs[i] = names[d]
		pos[attrs[i]] = i
	}
	algo := q.Algorithm
	if algo == "" {
		algo = RP
	}
	res := &Result{
		ds:           ds,
		dims:         dims,
		set:          set,
		attrs:        attrs,
		pos:          pos,
		Algorithm:    algo,
		CellsWritten: int64(set.NumCells()),
	}
	out := &OutOfCoreStats{
		PeakBytes:        st.PeakBytes,
		LoadedPartitions: st.LoadedPartitions,
		SpilledValues:    st.SpilledValues,
		MaxSpillDepth:    st.MaxSpillDepth,
		PrunedValues:     st.PrunedValues,
		BytesSpilled:     st.BytesSpilled,
		IO:               publicIOStats(st.IO),
	}
	return res, out, nil
}
