package icebergcube

import (
	"fmt"
	"reflect"
	"testing"

	"icebergcube/internal/wal"
)

// cellsEqual compares two Answer outputs cell for cell.
func cellsEqual(t *testing.T, label string, want, got []Cell) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d cells, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("%s: cell %d differs:\n got %+v\nwant %+v", label, i, got[i], want[i])
		}
	}
}

// groupBys enumerates every subset of attrs (the full lattice).
func groupBys(attrs []string) [][]string {
	var out [][]string
	for mask := 0; mask < 1<<len(attrs); mask++ {
		var gb []string
		for i, a := range attrs {
			if mask&(1<<i) != 0 {
				gb = append(gb, a)
			}
		}
		out = append(out, gb)
	}
	return out
}

// TestSegmentRoundTrip proves flush→load→Answer byte-identical, including
// dictionary values first seen by Append (the extension layer must be
// persisted and restored with the base dictionary).
func TestSegmentRoundTrip(t *testing.T) {
	ds := salesDataset(t)
	m, err := Materialize(ds, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Extend every dictionary with appended values, then commit.
	if err := m.Append([][]string{
		{"Tesla", "2024", "silver"},
		{"Tesla", "1990", "red"},
		{"Chevy", "2024", "silver"},
	}, []float64{11, 22, 33}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(); err != nil {
		t.Fatal(err)
	}

	fsys := wal.NewMemFS()
	if err := m.FlushSegmentsFS(fsys, "cube"); err != nil {
		t.Fatal(err)
	}
	// A second flush into the same directory must refuse.
	if err := m.FlushSegmentsFS(fsys, "cube"); err == nil {
		t.Fatal("second flush into the same dir succeeded")
	}

	ds2, err := OpenSegmentsFS(fsys, "cube")
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Len() != ds.Len()+3 {
		t.Fatalf("reloaded %d rows, want %d", ds2.Len(), ds.Len()+3)
	}
	m2, err := Materialize(ds2, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, gb := range groupBys(m.attrs) {
		for _, minsup := range []int64{1, 3} {
			want, err := m.Answer(gb, minsup)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m2.Answer(gb, minsup)
			if err != nil {
				t.Fatal(err)
			}
			cellsEqual(t, fmt.Sprintf("groupBy=%v minsup=%d", gb, minsup), want, got)
		}
	}
}

// TestColdAnswerMatchesWarm proves the cold tier serves the exact cells
// the in-memory server does, and that its cache, ancestor rewrite and
// measured I/O behave: a repeat query hits, a subset query derives from
// the resident ancestor without touching disk, and cold scans read fewer
// bytes for narrower projections.
func TestColdAnswerMatchesWarm(t *testing.T) {
	ds := SyntheticWeather(3000, 7)
	dims := ds.PickDimsByCardinalityProduct(5, 8)
	m, err := Materialize(ds, dims, 4)
	if err != nil {
		t.Fatal(err)
	}
	fsys := wal.NewMemFS()
	if err := m.FlushSegmentsFS(fsys, "cube"); err != nil {
		t.Fatal(err)
	}
	cold, err := OpenColdFS(fsys, "cube", 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Rows() != int64(ds.Len()) {
		t.Fatalf("cold table has %d rows, want %d", cold.Rows(), ds.Len())
	}
	for _, gb := range groupBys(dims) {
		want, err := m.Answer(gb, 2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cold.Answer(gb, 2)
		if err != nil {
			t.Fatal(err)
		}
		cellsEqual(t, fmt.Sprintf("groupBy=%v", gb), want, got)
	}

	cold.ResetCache()
	wide := dims[:3]
	_, st, err := cold.AnswerStats(wide, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !st.ColdScan || st.RowsScanned != int64(ds.Len()) {
		t.Fatalf("first query should cold-scan all rows: %+v", st)
	}
	// Repeat: cache hit, no scan.
	_, st, err = cold.AnswerStats(wide, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !st.CacheHit {
		t.Fatalf("repeat query missed: %+v", st)
	}
	// Subset of the resident shape: ancestor aggregation, not a scan.
	before := cold.Metrics()
	_, st, err = cold.AnswerStats(wide[:1], 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.ColdScan || st.CellsScanned == 0 {
		t.Fatalf("subset query should derive from the resident ancestor: %+v", st)
	}
	after := cold.Metrics()
	if after.IO.BytesRead != before.IO.BytesRead {
		t.Fatalf("ancestor derivation touched disk: %d → %d bytes", before.IO.BytesRead, after.IO.BytesRead)
	}
	if after.AncestorAggregations != before.AncestorAggregations+1 {
		t.Fatalf("ancestor aggregation not counted: %+v", after)
	}
	// A narrow projection's cold scan reads fewer bytes than a wide one.
	cold.ResetCache()
	b0 := cold.Metrics().IO.BytesRead
	if _, err := cold.Answer(dims[:1], 1); err != nil {
		t.Fatal(err)
	}
	narrow := cold.Metrics().IO.BytesRead - b0
	cold.ResetCache()
	b1 := cold.Metrics().IO.BytesRead
	if _, err := cold.Answer(dims, 1); err != nil {
		t.Fatal(err)
	}
	full := cold.Metrics().IO.BytesRead - b1
	if narrow >= full {
		t.Fatalf("1-column cold scan read %d bytes, full scan %d", narrow, full)
	}
}

// TestComputeOutOfCoreDifferential proves the public out-of-core path —
// flushed segments, byte budget, both write orders — produces the exact
// cells Compute produces in memory, across minsups and a budget forcing
// multi-level spill.
func TestComputeOutOfCoreDifferential(t *testing.T) {
	// 24000 rows × (4·4+8) bytes ≈ 576KB — more than 4× the tight budgets
	// below, which still leave room for the base table's one-block scan
	// buffer (4096 rows × 24B ≈ 98KB; a budget under that is infeasible).
	ds := Synthetic([]string{"a", "b", "c", "d"}, []int{8, 11, 5, 14}, []float64{1, 2, 1, 3}, 24000, 13)
	fsys := wal.NewMemFS()
	m, err := Materialize(ds, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.FlushSegmentsFS(fsys, "cube"); err != nil {
		t.Fatal(err)
	}
	for _, minsup := range []int64{1, 5} {
		want, err := Compute(ds, Query{MinSupport: minsup})
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct {
			algo   Algorithm
			budget int64
		}{
			{RP, 1 << 30},   // fits entirely
			{RP, 128 << 10}, // forces spill
			{BPP, 128 << 10},
			{"", 192 << 10},
		} {
			res, st, err := ComputeOutOfCoreFS(fsys, "cube", Query{Algorithm: tc.algo, MinSupport: minsup}, tc.budget)
			if err != nil {
				t.Fatalf("algo=%q budget=%d: %v", tc.algo, tc.budget, err)
			}
			if st.PeakBytes <= 0 || st.PeakBytes > tc.budget {
				t.Fatalf("algo=%q: peak %d outside budget %d", tc.algo, st.PeakBytes, tc.budget)
			}
			if tc.budget < 1<<20 && st.SpilledValues == 0 {
				t.Fatalf("algo=%q budget=%d: nothing spilled: %+v", tc.algo, tc.budget, st)
			}
			for _, gb := range groupBys(ds.DimNames()) {
				w, err := want.Cuboid(gb...)
				if err != nil {
					t.Fatal(err)
				}
				g, err := res.Cuboid(gb...)
				if err != nil {
					t.Fatal(err)
				}
				cellsEqual(t, fmt.Sprintf("algo=%q budget=%d minsup=%d gb=%v", tc.algo, tc.budget, minsup, gb), w, g)
			}
		}
	}
	// Unsupported algorithms are rejected.
	if _, _, err := ComputeOutOfCoreFS(fsys, "cube", Query{Algorithm: PT}, 1<<20); err == nil {
		t.Fatal("out-of-core PT should be rejected")
	}
}
