package icebergcube

// The serving-layer oracle: cache-served and ancestor-served answers must
// be byte-identical to (a) the legacy full-leaf rescan, (b) the full cube
// computed by the parallel algorithms, and (c) an independent per-row
// naive aggregation over the raw data set — across fuzzed query
// workloads, minsup values, eviction-pressure budgets, and concurrent
// queriers (the concurrent test is part of `make serve-smoke` and runs
// under -race in CI).

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// renderCells renders an Answer deterministically for byte comparison.
func renderCells(cells []Cell) string {
	var b strings.Builder
	for _, c := range cells {
		fmt.Fprintf(&b, "%s min=%g max=%g avg=%g\n", c.String(), c.Min, c.Max, c.Avg)
	}
	return b.String()
}

// randomGroupBys draws a fuzzed query workload over dims: random subsets
// (including the empty group-by and repeats, so the cache path is
// exercised), in random order.
func randomGroupBys(dims []string, n int, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]string, 0, n)
	for i := 0; i < n; i++ {
		var gb []string
		for _, d := range dims {
			if rng.Intn(2) == 0 {
				gb = append(gb, d)
			}
		}
		out = append(out, gb)
	}
	return out
}

// TestServingMatchesLeafRescanAndCube: fuzzed workloads across budgets
// (tight enough to force evictions, and roomy) and minsup values — every
// Answer equals the legacy leaf rescan and the full cube's cuboid.
func TestServingMatchesLeafRescanAndCube(t *testing.T) {
	ds := Synthetic([]string{"A", "B", "C", "D", "E"}, []int{7, 5, 4, 3, 6}, []float64{2, 1, 1.5, 1, 3}, 2000, 41)
	mat, err := Materialize(ds, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Compute(ds, Query{MinSupport: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{1 << 10, 64 << 20} {
		mat.SetCacheBudget(budget)
		mat.ResetCache()
		for _, minsup := range []int64{1, 2, 5} {
			for qi, gb := range randomGroupBys(ds.DimNames(), 40, 1000*budget+minsup) {
				got, stats, err := mat.AnswerStats(gb, minsup)
				if err != nil {
					t.Fatal(err)
				}
				legacy, err := mat.answerLeafRescan(gb, minsup)
				if err != nil {
					t.Fatal(err)
				}
				if g, l := renderCells(got), renderCells(legacy); g != l {
					t.Fatalf("budget=%d minsup=%d q%d %v (stats %+v): serving != leaf rescan:\n%s",
						budget, minsup, qi, gb, stats, firstDiffLine(l, g))
				}
				// The cube filters at query time too (minsup-1 cube).
				cube, err := full.Cuboid(gb...)
				if err != nil {
					t.Fatal(err)
				}
				kept := cube[:0:0]
				for _, c := range cube {
					if c.Count >= minsup {
						kept = append(kept, c)
					}
				}
				if g, w := renderCells(got), renderCells(kept); g != w {
					t.Fatalf("budget=%d minsup=%d q%d %v: serving != cube:\n%s",
						budget, minsup, qi, gb, firstDiffLine(w, g))
				}
			}
		}
		m := mat.CacheMetrics()
		if m.ResidentBytes > m.BudgetBytes {
			t.Fatalf("budget violated: %+v", m)
		}
		if budget == 1<<10 && m.Evictions == 0 {
			t.Fatalf("tight budget produced no evictions: %+v", m)
		}
	}
}

// TestServingMatchesNaiveRowScan: an independent reimplementation —
// grouping the raw rows directly, never touching the cube code — agrees
// with the served answers.
func TestServingMatchesNaiveRowScan(t *testing.T) {
	names := []string{"A", "B", "C"}
	ds := Synthetic(names, []int{5, 4, 3}, nil, 900, 43)
	mat, err := Materialize(ds, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Re-read the rows through the public CSV round trip so this check
	// shares no decoding path with the serving layer.
	var csv strings.Builder
	if err := ds.WriteCSV(&csv, "m"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	header := strings.Split(lines[0], ",")
	rows := make([][]string, 0, len(lines)-1)
	for _, l := range lines[1:] {
		rows = append(rows, strings.Split(l, ","))
	}
	for _, gb := range [][]string{{"A"}, {"B", "C"}, {"A", "B", "C"}, {}} {
		cols := make([]int, len(gb))
		for i, g := range gb {
			for j, h := range header {
				if h == g {
					cols[i] = j
				}
			}
		}
		type ref struct {
			count int64
			sum   float64
		}
		want := map[string]ref{}
		for _, r := range rows {
			parts := make([]string, len(cols))
			for i, c := range cols {
				parts[i] = r[c]
			}
			k := strings.Join(parts, "\x00")
			var meas float64
			fmt.Sscanf(r[len(r)-1], "%g", &meas)
			w := want[k]
			w.count++
			w.sum += meas
			want[k] = w
		}
		for _, minsup := range []int64{1, 3} {
			cells, err := mat.Answer(gb, minsup)
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			for _, w := range want {
				if w.count >= minsup {
					n++
				}
			}
			if len(cells) != n {
				t.Fatalf("%v minsup=%d: %d cells, naive says %d", gb, minsup, len(cells), n)
			}
			for _, c := range cells {
				k := strings.Join(c.Values, "\x00")
				w, ok := want[k]
				if !ok {
					t.Fatalf("%v: cell %v not in naive row scan", gb, c.Values)
				}
				if c.Count != w.count || math.Abs(c.Sum-w.sum) > 1e-6*(1+math.Abs(w.sum)) {
					t.Fatalf("%v cell %v: count=%d sum=%g, naive count=%d sum=%g",
						gb, c.Values, c.Count, c.Sum, w.count, w.sum)
				}
			}
		}
	}
}

// TestServingConcurrentQueriers: racing queriers over a tight-budget
// cache all receive the single-threaded answers.
func TestServingConcurrentQueriers(t *testing.T) {
	ds := Synthetic([]string{"A", "B", "C", "D"}, []int{6, 5, 4, 3}, []float64{2, 1, 1, 1.5}, 1500, 47)
	mat, err := Materialize(ds, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	mat.SetCacheBudget(2 << 10) // eviction pressure while racing
	queries := randomGroupBys(ds.DimNames(), 24, 53)
	want := make([]string, len(queries))
	for i, gb := range queries {
		cells, err := mat.answerLeafRescan(gb, 2)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = renderCells(cells)
	}
	const G = 8
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(59 + g)))
			for i := 0; i < 60; i++ {
				qi := rng.Intn(len(queries))
				cells, err := mat.Answer(queries[qi], 2)
				if err != nil {
					t.Error(err)
					return
				}
				if got := renderCells(cells); got != want[qi] {
					t.Errorf("goroutine %d query %v: %s", g, queries[qi], firstDiffLine(want[qi], got))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	m := mat.CacheMetrics()
	if m.ResidentBytes > m.BudgetBytes {
		t.Fatalf("budget violated under concurrency: %+v", m)
	}
	if m.Queries != G*60 {
		t.Fatalf("query metric %d, want %d", m.Queries, G*60)
	}
}

// TestServingStatsProgression: cold miss → ancestor serve → cache hit is
// visible through AnswerStats and CacheMetrics.
func TestServingStatsProgression(t *testing.T) {
	ds := Synthetic([]string{"A", "B", "C", "D"}, []int{8, 7, 6, 5}, nil, 3000, 61)
	mat, err := Materialize(ds, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, s1, err := mat.AnswerStats([]string{"A", "B", "C"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s1.CacheHit || len(s1.ServedFrom) != 4 || s1.CellsScanned != mat.NumCells() {
		t.Fatalf("cold ABC should rescan the 4-dim leaf: %+v", s1)
	}
	_, s2, err := mat.AnswerStats([]string{"A", "B"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s2.CacheHit || strings.Join(s2.ServedFrom, ",") != "A,B,C" {
		t.Fatalf("AB should aggregate from the cached ABC: %+v", s2)
	}
	if s2.CellsScanned >= s1.CellsScanned {
		t.Fatalf("ancestor serve scanned %d ≥ leaf scan %d", s2.CellsScanned, s1.CellsScanned)
	}
	_, s3, err := mat.AnswerStats([]string{"A", "B"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !s3.CacheHit || s3.CellsScanned != 0 {
		t.Fatalf("repeat AB should hit the cache: %+v", s3)
	}
	m := mat.CacheMetrics()
	if m.LeafAggregations != 1 || m.AncestorAggregations != 1 || m.CacheHits != 1 {
		t.Fatalf("metrics don't reflect the progression: %+v", m)
	}
}

// TestAnswerRejectsDuplicates: duplicate group-by attributes used to be
// silently accepted and produced malformed keys; now they error, on both
// Materialized.Answer and Result.Cuboid.
func TestAnswerRejectsDuplicates(t *testing.T) {
	ds := Synthetic([]string{"A", "B"}, []int{4, 3}, nil, 200, 1)
	mat, err := Materialize(ds, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mat.Answer([]string{"A", "A"}, 1); err == nil {
		t.Fatal("Materialized.Answer accepted a duplicate attribute")
	}
	if _, err := mat.Answer([]string{"B", "A", "B"}, 1); err == nil {
		t.Fatal("Materialized.Answer accepted a duplicate attribute")
	}
	res, err := Compute(ds, Query{MinSupport: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Cuboid("A", "A"); err == nil {
		t.Fatal("Result.Cuboid accepted a duplicate attribute")
	}
}
